"""Per-rule tests: each rule code fires on a known-bad configuration.

Every built-in rule gets a minimal synthetic snapshot that trips exactly
the pathology the rule encodes, plus a clean counterpart proving the
rule stays quiet on healthy configurations.
"""

import pytest

from repro.config.events import EventConfig, EventType
from repro.config.lte import (
    InterFreqLayerConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.core.crawler import CellConfigSnapshot
from repro.lint import all_rules, lint_snapshots
from repro.lint.pingpong import analyze_a3, analyze_a5, analyze_event

CLEAN_SERVING = ServingCellConfig(
    s_intra_search_p=30.0, s_non_intra_search_p=8.0, thresh_serving_low_p=6.0,
)


def _snapshot(gci=1, channel=850, carrier="A", serving=None, layers=(), meas=None):
    config = LteCellConfig(
        serving=serving or CLEAN_SERVING,
        inter_freq_layers=tuple(layers),
    )
    return CellConfigSnapshot(
        carrier=carrier, gci=gci, rat="LTE", channel=channel, city="X",
        first_seen_ms=0, lte_config=config, meas_config=meas,
    )


def _codes(snapshots, only=None):
    report = lint_snapshots(snapshots, codes=only)
    return {f.code for f in report.findings}


def test_registry_covers_all_scopes():
    rules = all_rules()
    codes = [r.code for r in rules]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert {r.scope for r in rules} == {
        "cell", "network", "graph", "drift", "coverage"
    }
    assert len(rules) >= 20


def test_hc001_domain_violation():
    bad = _snapshot(serving=ServingCellConfig(
        s_intra_search_p=63.0,  # odd value: the domain steps by 2 dB
        s_non_intra_search_p=8.0, thresh_serving_low_p=6.0,
    ))
    findings = lint_snapshots([bad], codes=["HC001"]).findings
    assert findings and findings[0].severity == "problem"
    assert "s_intra_search_p" in findings[0].message
    assert _codes([_snapshot()], only=["HC001"]) == set()


def test_hc002_a3_negative_offset():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=-2.0, hysteresis=1.0),
    ))
    assert "HC002" in _codes([_snapshot(meas=meas)])
    good = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0),
    ))
    assert "HC002" not in _codes([_snapshot(meas=good)])


def test_hc003_a5_no_serving_requirement():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A5, threshold1=-44.0, threshold2=-112.0),
    ))
    assert "HC003" in _codes([_snapshot(meas=meas)])


def test_hc004_a5_inverted_thresholds():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A5, threshold1=-100.0, threshold2=-112.0),
    ))
    assert "HC004" in _codes([_snapshot(meas=meas)])
    upright = MeasurementConfig(events=(
        EventConfig(event=EventType.A5, threshold1=-112.0, threshold2=-100.0),
    ))
    assert "HC004" not in _codes([_snapshot(meas=upright)])


def test_hc005_nonintra_above_intra():
    bad = _snapshot(serving=ServingCellConfig(
        s_intra_search_p=8.0, s_non_intra_search_p=20.0, thresh_serving_low_p=6.0,
    ))
    findings = lint_snapshots([bad], codes=["HC005"]).findings
    assert findings and findings[0].severity == "problem"


def test_hc006_premature_intra_measurement():
    bad = _snapshot(serving=ServingCellConfig(
        s_intra_search_p=62.0, s_non_intra_search_p=8.0, thresh_serving_low_p=6.0,
    ))
    assert "HC006" in _codes([bad])
    assert "HC006" not in _codes([_snapshot()])


def test_hc007_late_nonintra_measurement():
    bad = _snapshot(serving=ServingCellConfig(
        s_intra_search_p=30.0, s_non_intra_search_p=2.0, thresh_serving_low_p=6.0,
    ))
    assert "HC007" in _codes([bad])


def test_hc008_smeasure_shadows_event():
    meas = MeasurementConfig(
        events=(EventConfig(event=EventType.A5, threshold1=-90.0, threshold2=-100.0),),
        s_measure=-97.0,
    )
    assert "HC008" in _codes([_snapshot(meas=meas)])
    gated_ok = MeasurementConfig(
        events=(EventConfig(event=EventType.A5, threshold1=-100.0, threshold2=-95.0),),
        s_measure=-97.0,
    )
    assert "HC008" not in _codes([_snapshot(meas=gated_ok)])


def test_hc009_a3_ping_pong_guaranteed_is_problem():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=-1.0, hysteresis=1.0),
    ))
    findings = lint_snapshots([_snapshot(meas=meas)], codes=["HC009"]).findings
    assert findings and findings[0].severity == "problem"


def test_hc009_a3_ping_pong_risky_band_is_warning():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=0.5, hysteresis=0.25,
                    time_to_trigger_ms=40),
    ))
    findings = lint_snapshots([_snapshot(meas=meas)], codes=["HC009"]).findings
    assert findings and findings[0].severity == "warning"
    damped = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=0.5, hysteresis=0.25,
                    time_to_trigger_ms=480),
    ))
    assert _codes([_snapshot(meas=damped)], only=["HC009"]) == set()


def test_hc010_a5_ping_pong():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A5, threshold1=-44.0, threshold2=-100.0,
                    time_to_trigger_ms=640),
    ))
    assert "HC010" in _codes([_snapshot(meas=meas)])
    damped = MeasurementConfig(events=(
        EventConfig(event=EventType.A5, threshold1=-44.0, threshold2=-100.0,
                    time_to_trigger_ms=1024),
    ))
    assert "HC010" not in _codes([_snapshot(meas=damped)])


def test_hc011_dead_event():
    meas = MeasurementConfig(events=(
        # A2 entry needs serving + hys < -140: below the RSRP floor.
        EventConfig(event=EventType.A2, threshold1=-140.0),
        # A4 entry needs a neighbor above the -44 dBm ceiling.
        EventConfig(event=EventType.A4, threshold1=-44.0),
    ))
    findings = lint_snapshots([_snapshot(meas=meas)], codes=["HC011"]).findings
    assert len(findings) == 2
    live = MeasurementConfig(events=(
        EventConfig(event=EventType.A2, threshold1=-112.0),
    ))
    assert _codes([_snapshot(meas=live)], only=["HC011"]) == set()


def test_hc012_duplicate_event():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=2.0),
        EventConfig(event=EventType.A3, offset=4.0),
    ))
    assert "HC012" in _codes([_snapshot(meas=meas)])
    distinct = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=2.0, metric="rsrp"),
        EventConfig(event=EventType.A3, offset=2.0, metric="rsrq"),
    ))
    assert "HC012" not in _codes([_snapshot(meas=distinct)])


def test_hc101_priority_conflict():
    snapshots = [
        _snapshot(gci=1, channel=850,
                  serving=ServingCellConfig(cell_reselection_priority=3)),
        _snapshot(gci=2, channel=850,
                  serving=ServingCellConfig(cell_reselection_priority=5)),
    ]
    findings = lint_snapshots(snapshots, codes=["HC101"]).findings
    assert len(findings) == 1
    assert findings[0].channel == 850
    assert findings[0].gci == -1


def test_hc102_layer_priority_disagreement():
    snapshots = [
        _snapshot(gci=1, channel=850, layers=[
            InterFreqLayerConfig(dl_carrier_freq=1975, cell_reselection_priority=2),
        ]),
        _snapshot(gci=2, channel=850, layers=[
            InterFreqLayerConfig(dl_carrier_freq=1975, cell_reselection_priority=6),
        ]),
    ]
    findings = lint_snapshots(snapshots, codes=["HC102"]).findings
    assert len(findings) == 1
    assert findings[0].channel == 1975


def test_hc103_priority_loop():
    snapshots = [
        _snapshot(gci=1, channel=850,
                  serving=ServingCellConfig(cell_reselection_priority=3),
                  layers=[InterFreqLayerConfig(dl_carrier_freq=1975,
                                               cell_reselection_priority=5)]),
        _snapshot(gci=2, channel=1975,
                  serving=ServingCellConfig(cell_reselection_priority=3),
                  layers=[InterFreqLayerConfig(dl_carrier_freq=850,
                                               cell_reselection_priority=5)]),
    ]
    findings = lint_snapshots(snapshots, codes=["HC103"]).findings
    assert findings and findings[0].severity == "problem"
    assert findings[0].subject == "850<->1975"
    consistent = [
        _snapshot(gci=1, channel=850,
                  serving=ServingCellConfig(cell_reselection_priority=3),
                  layers=[InterFreqLayerConfig(dl_carrier_freq=1975,
                                               cell_reselection_priority=5)]),
        _snapshot(gci=2, channel=1975,
                  serving=ServingCellConfig(cell_reselection_priority=5),
                  layers=[InterFreqLayerConfig(dl_carrier_freq=850,
                                               cell_reselection_priority=3)]),
    ]
    assert lint_snapshots(consistent, codes=["HC103"]).findings == []


def test_hc104_reselection_gap():
    snapshots = [
        # Channel 850 leaves to lower-priority 1975 below serving-low 10 dB.
        _snapshot(gci=1, channel=850,
                  serving=ServingCellConfig(
                      s_intra_search_p=30.0, s_non_intra_search_p=12.0,
                      thresh_serving_low_p=10.0, cell_reselection_priority=5),
                  layers=[InterFreqLayerConfig(dl_carrier_freq=1975,
                                               cell_reselection_priority=3)]),
        # Channel 1975 climbs back once 850 exceeds just 6 dB: overlap.
        _snapshot(gci=2, channel=1975,
                  serving=ServingCellConfig(cell_reselection_priority=3),
                  layers=[InterFreqLayerConfig(dl_carrier_freq=850,
                                               cell_reselection_priority=5,
                                               thresh_x_high_p=6.0)]),
    ]
    findings = lint_snapshots(snapshots, codes=["HC104"]).findings
    assert len(findings) == 1
    assert findings[0].channel == 850
    assert findings[0].subject == "850->1975"


def test_clean_snapshot_is_silent():
    assert _codes([_snapshot()]) == set()


@pytest.mark.parametrize("offset,hysteresis,guaranteed", [
    (-1.0, 1.0, True),    # margin 0: overlap
    (-3.0, 0.5, True),    # margin < 0
    (0.5, 0.25, False),   # narrow band, fading-driven
])
def test_pingpong_a3_margins(offset, hysteresis, guaranteed):
    risk = analyze_a3(EventConfig(event=EventType.A3, offset=offset,
                                  hysteresis=hysteresis))
    assert risk is not None
    assert risk.guaranteed is guaranteed
    assert risk.margin_db == pytest.approx(2.0 * (offset + hysteresis))


def test_pingpong_a3_safe_margin():
    assert analyze_a3(EventConfig(event=EventType.A3, offset=2.0,
                                  hysteresis=1.0)) is None


def test_pingpong_a5_requires_rsrp_ceiling():
    risky = EventConfig(event=EventType.A5, threshold1=-44.0, threshold2=-100.0)
    assert analyze_a5(risky) is not None
    demanding = EventConfig(event=EventType.A5, threshold1=-100.0, threshold2=-112.0)
    assert analyze_a5(demanding) is None
    rsrq = EventConfig(event=EventType.A5, metric="rsrq", threshold1=-3.0,
                       threshold2=-19.5)
    assert analyze_a5(rsrq) is None


def test_pingpong_dispatch():
    a3 = EventConfig(event=EventType.A3, offset=-1.0, hysteresis=0.0)
    assert analyze_event(a3) is not None and analyze_event(a3).event == "A3"
    a1 = EventConfig(event=EventType.A1, threshold1=-80.0)
    assert analyze_event(a1) is None
