"""Tests for handoff-policy inference."""

import pytest

from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.lte import MeasurementConfig
from repro.core.analysis.policies import (
    PolicyLabel,
    carrier_policy_profile,
    classify_policy,
)
from repro.core.crawler import CellConfigSnapshot


def _meas(events=(), periodic=None):
    return MeasurementConfig(events=tuple(events), periodic=periodic)


def test_permissive_a5_is_performance_driven():
    meas = _meas([EventConfig(event=EventType.A5, threshold1=-44.0,
                              threshold2=-114.0)])
    label = classify_policy(meas)
    assert label.trigger == "A5"
    assert label.label == "performance-driven"
    assert label.eagerness > 0.5


def test_strict_a5_is_overhead_driven():
    meas = _meas([EventConfig(event=EventType.A5, threshold1=-120.0,
                              threshold2=-110.0)])
    label = classify_policy(meas)
    assert label.label == "overhead-driven"


def test_small_a3_offset_hands_off_early():
    eager = classify_policy(_meas([EventConfig(event=EventType.A3, offset=1.0,
                                               time_to_trigger_ms=40)]))
    reluctant = classify_policy(_meas([EventConfig(event=EventType.A3, offset=12.0,
                                                   time_to_trigger_ms=2560)]))
    assert eager.eagerness > reluctant.eagerness
    assert reluctant.label == "overhead-driven"


def test_a2_only_config_has_no_trigger():
    meas = _meas([EventConfig(event=EventType.A2, threshold1=-114.0)])
    label = classify_policy(meas)
    assert label.trigger == "none"
    assert label.label == "balanced"


def test_periodic_policy():
    label = classify_policy(_meas(periodic=PeriodicConfig(report_interval_ms=2048)))
    assert label.trigger == "P"


def test_carrier_policy_profile():
    def snapshot(carrier, gci, meas):
        return CellConfigSnapshot(
            carrier=carrier, gci=gci, rat="LTE", channel=850, city="X",
            first_seen_ms=0, meas_config=meas,
        )

    snapshots = [
        snapshot("A", 1, _meas([EventConfig(event=EventType.A5, threshold1=-44.0,
                                            threshold2=-114.0)])),
        snapshot("A", 2, _meas([EventConfig(event=EventType.A3, offset=3.0)])),
        snapshot("T", 1, _meas([EventConfig(event=EventType.A3, offset=12.0,
                                            time_to_trigger_ms=2560)])),
        snapshot("T", 2, None),  # no measConfig observed: skipped
    ]
    snapshots[3].meas_config = None
    profile = carrier_policy_profile(snapshots)
    assert profile["A"]["n"] == 2
    assert profile["T"]["n"] == 1
    assert profile["A"]["mean_eagerness"] > profile["T"]["mean_eagerness"]
    assert profile["T"]["labels"] == {"overhead-driven": 1.0}


def test_profile_population_has_mixed_policies(tiny_d2):
    """The synthetic carriers should span the policy axis."""
    from repro.core.crawler import ConfigCrawler
    from repro.rrc.diag import DiagWriter
    from repro.cellnet.rat import RAT

    cells = [c for c in tiny_d2.plan.registry.by_carrier("A")
             if c.rat is RAT.LTE][:150]
    writer = DiagWriter.in_memory()
    for cell in cells:
        for message in tiny_d2.server.sib_messages(cell):
            writer.write(0, message)
        writer.write(0, tiny_d2.server.connection_reconfiguration(cell))
    snapshots = ConfigCrawler.crawl(writer.getvalue())
    profile = carrier_policy_profile(snapshots)
    assert profile["A"]["n"] > 100
    assert len(profile["A"]["labels"]) >= 2
