"""End-to-end integration tests: the full MMLab pipeline and the paper's
headline shape findings on the shared dataset builds.
"""

from collections import Counter

import numpy as np
import pytest

from repro.cellnet.rat import RAT
from repro.core import MMLab
from repro.core.analysis.events import event_mix
from repro.core.analysis.performance import idle_rsrp_change, rsrp_change_by_event
from repro.core.analysis.thresholds import threshold_gaps
from repro.simulate.runner import DriveSimulator
from repro.simulate.traffic import Speedtest


def test_full_pipeline_drive_to_analysis(scenario):
    """One Type-II run through every stage: drive -> diag log -> crawl ->
    instances -> analysis, never touching simulator internals."""
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=31)
    trajectory = scenario.urban_trajectory(np.random.default_rng(71), duration_s=360.0)
    result = sim.run(trajectory, Speedtest())
    mmlab = MMLab()
    snapshots = mmlab.crawl(result.diag_log)
    assert snapshots
    instances = mmlab.extract_handoffs(
        result.diag_log, "A", throughput_series=result.throughput_series()
    )
    # Cross-check: the crawled snapshots cover exactly the camped cells.
    camped = {s.gci for s in snapshots}
    for instance in instances:
        assert instance.source_gci in camped
        assert instance.target_gci in camped


def test_finding_a3_dominates_and_improves(tiny_d1):
    """Finding 2a-ish: A3 handoffs overwhelmingly improve RSRP."""
    report = rsrp_change_by_event(tiny_d1.store, "A")
    if report.scatter["A3"]:
        assert report.improved["A3"] > 0.8


def test_finding_a5_weaker_targets_exist(tiny_d1):
    """Fig. 6: A5 is the event that produces weaker-target handoffs."""
    report = rsrp_change_by_event(tiny_d1.store, "A")
    if len(report.scatter["A5"]) >= 5:
        assert report.improved["A5"] < report.improved["A3"]


def test_finding_idle_equal_always_improves(tiny_d1):
    classes = idle_rsrp_change(tiny_d1.store)
    for cls in ("intra", "non-intra(E)"):
        if classes[cls]["n"] >= 3:
            assert classes[cls]["improved"] == 1.0


def test_finding_threshold_ordering(tiny_d2):
    """Fig. 11: Theta_intra >= Theta_nonintra over the population."""
    report = threshold_gaps(tiny_d2.store)
    assert report.intra_minus_nonintra
    assert report.violation_fraction == 0.0
    assert min(report.intra_minus_nonintra) >= 0.0


def test_finding_event_mix_matches_profiles(tiny_d1):
    """The decisive-event mix should echo the carrier policy mix."""
    report = event_mix(tiny_d1.store, "A")
    if report.n_instances >= 20:
        assert report.share("A3") + report.share("A5") > 0.6
        assert report.share("A3") > 0.3
        assert report.share("A4") < 0.2


def test_d2_is_collected_through_logs_only(tiny_d2):
    """Every sample's cell must exist in the deployment, with matching
    channel — evidence the crawler reconstructed identity correctly."""
    from repro.cellnet.cell import CellId

    checked = 0
    for sample in tiny_d2.store:
        cell = tiny_d2.plan.registry.get(CellId(sample.carrier, sample.gci))
        assert cell.rat.value == sample.rat
        assert cell.city == sample.city
        checked += 1
        if checked > 2000:
            break


def test_crawled_priorities_match_profiles(tiny_d2):
    """Serving priorities in D2 equal what the profile would generate."""
    from repro.cellnet.cell import CellId

    count = 0
    for sample in tiny_d2.store:
        if sample.parameter != "cell_reselection_priority":
            continue
        cell = tiny_d2.plan.registry.get(CellId(sample.carrier, sample.gci))
        base = tiny_d2.server.lte_config(cell)
        # Temporal churn can move a few values; the base must match for
        # the overwhelming majority.
        if base.serving.cell_reselection_priority == sample.value:
            count += 1
        if count > 300:
            break
    assert count > 250
