"""Tests for structural configuration validation."""

import pytest

from repro.cellnet.rat import RAT
from repro.config.legacy import UmtsCellConfig
from repro.config.lte import LteCellConfig, ServingCellConfig
from repro.config.validation import assert_valid, validate_config


def test_valid_lte_config_passes():
    assert validate_config(LteCellConfig(), RAT.LTE) == []
    assert_valid(LteCellConfig(), RAT.LTE)


def test_domain_violation_reported():
    config = LteCellConfig(serving=ServingCellConfig(s_intra_search_p=63.0))
    problems = validate_config(config, RAT.LTE)
    assert problems and "s_intra_search_p" in problems[0]
    with pytest.raises(ValueError, match="s_intra_search_p"):
        assert_valid(config, RAT.LTE)


def test_lte_config_with_legacy_rat_raises_type_error():
    with pytest.raises(TypeError, match="expected LegacyCellConfig"):
        validate_config(LteCellConfig(), RAT.UMTS)


def test_legacy_config_with_lte_rat_raises_type_error():
    with pytest.raises(TypeError, match="expected LteCellConfig"):
        validate_config(UmtsCellConfig(), RAT.LTE)


def test_valid_legacy_config_passes():
    assert validate_config(UmtsCellConfig(), RAT.UMTS) == []
