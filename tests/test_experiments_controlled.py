"""Tests for the controlled-experiment helpers."""

import numpy as np
import pytest

from repro.config.events import EventConfig, EventType
from repro.experiments.controlled import (
    DriveMetrics,
    FixedEventConfigServer,
    run_controlled_drive,
)
from repro.simulate.runner import DriveResult
from repro.ue.device import HandoffEvent
from repro.cellnet.cell import CellId


def test_fixed_server_pins_every_cell(scenario):
    events = (EventConfig(event=EventType.A3, offset=5.0, hysteresis=1.0),)
    server = FixedEventConfigServer(scenario.env, events)
    cells = list(scenario.plan.registry.by_carrier("A"))[:5]
    configs = {server.connection_reconfiguration(c).meas_config for c in cells}
    assert len(configs) == 1
    config = configs.pop()
    assert config.events == events
    assert config.periodic is None


def test_fixed_server_still_serves_sibs(scenario, lte_cell):
    events = (EventConfig(event=EventType.A3, offset=5.0, hysteresis=1.0),)
    server = FixedEventConfigServer(scenario.env, events)
    sibs = server.sib_messages(lte_cell)
    assert sibs  # idle-state broadcast unchanged


def _handoff(t, source, target):
    return HandoffEvent(
        time_ms=t, kind="active", source=CellId("A", source),
        target=CellId("A", target), decisive_event="A3",
        old_rsrp_dbm=-105.0, new_rsrp_dbm=-100.0, intra_freq=True,
    )


def test_drive_metrics_ping_pong_rate():
    result = DriveResult(carrier="A", tick_ms=200)
    result.handoffs = [
        _handoff(1000, 1, 2),
        _handoff(3000, 2, 1),   # back within 10 s: ping-pong
        _handoff(60_000, 1, 3),  # much later: not a ping-pong
    ]
    metrics = DriveMetrics.from_result(result)
    assert metrics.n_handoffs == 3
    assert metrics.ping_pong_rate == pytest.approx(0.5)


def test_drive_metrics_empty_result():
    metrics = DriveMetrics.from_result(DriveResult(carrier="A", tick_ms=200))
    assert metrics.n_handoffs == 0
    assert metrics.mean_throughput_bps == 0.0


def test_run_controlled_drive_end_to_end(scenario):
    events = (EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                          time_to_trigger_ms=320),)
    metrics = run_controlled_drive(events, scenario=scenario, duration_s=180.0)
    assert metrics.mean_throughput_bps > 0


def test_controlled_drive_offset_effect(scenario):
    """The fig07 mechanism at small scale: bigger offsets, fewer handoffs."""
    small = run_controlled_drive(
        (EventConfig(event=EventType.A3, offset=1.0, hysteresis=0.5,
                     time_to_trigger_ms=40),),
        scenario=scenario, duration_s=240.0,
    )
    large = run_controlled_drive(
        (EventConfig(event=EventType.A3, offset=12.0, hysteresis=2.0,
                     time_to_trigger_ms=640),),
        scenario=scenario, duration_s=240.0,
    )
    assert large.n_handoffs <= small.n_handoffs
