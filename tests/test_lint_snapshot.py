"""Tests for the versioned configuration-snapshot model."""

import json
import os

import pytest

from repro.config.events import EventConfig, EventType
from repro.lint import ConfigSnapshot, snapshot_digest
from repro.lint.fixtures import loop_fixture
from repro.lint.snapshot import SNAPSHOT_VERSION, decode_value, encode_value


def _fixture_snapshot(misconfigured=True, label="cap"):
    scenario = loop_fixture(misconfigured=misconfigured)
    return ConfigSnapshot.capture_world(
        scenario.env, scenario.server, label=label
    )


def test_codec_roundtrips_event_enum_and_tuples():
    event = EventConfig(
        event=EventType.A5, threshold1=-100.0, threshold2=-90.0,
        hysteresis=1.0, time_to_trigger_ms=640,
    )
    encoded = encode_value(event)
    assert encoded["__type__"] == "EventConfig"
    assert encoded["event"] == {"__enum__": "EventType", "value": "A5"}
    assert decode_value(encoded) == event


def test_codec_rejects_unknown_types():
    class NotAConfig:
        pass

    with pytest.raises(TypeError):
        encode_value(NotAConfig())
    with pytest.raises(ValueError):
        decode_value({"__type__": "NotAConfig"})


def test_decode_revalidates_through_constructors():
    event = EventConfig(event=EventType.A1, threshold1=-100.0)
    encoded = encode_value(event)
    encoded["hysteresis"] = -3.0  # invalid: constructor must reject
    with pytest.raises(ValueError):
        decode_value(encoded)


def test_capture_save_load_roundtrip(tmp_path):
    snapshot = _fixture_snapshot(label="round-000")
    path = tmp_path / "cap.json"
    snapshot.save(path)
    loaded = ConfigSnapshot.load(path)
    assert loaded.label == "round-000"
    assert len(loaded) == len(snapshot) == 3
    assert loaded.cells == snapshot.cells
    assert loaded.fleet_digest == snapshot.fleet_digest


def test_cell_digests_match_graph_verifier_digests():
    snapshot = _fixture_snapshot()
    digests = snapshot.cell_digests()
    assert set(digests) == {(c.carrier, c.gci) for c in snapshot.cells}
    for cell in snapshot.cells:
        assert digests[(cell.carrier, cell.gci)] == snapshot_digest(cell)


def test_fleet_digest_tracks_content_not_label():
    a = _fixture_snapshot(misconfigured=True, label="x")
    b = _fixture_snapshot(misconfigured=True, label="y")
    c = _fixture_snapshot(misconfigured=False, label="x")
    assert a.fleet_digest == b.fleet_digest
    assert a.fleet_digest != c.fleet_digest


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "cap.json"
    path.write_text(json.dumps({"version": SNAPSHOT_VERSION + 1, "cells": []}))
    with pytest.raises(ValueError, match="unsupported snapshot version"):
        ConfigSnapshot.load(path)


def test_save_is_atomic(tmp_path):
    snapshot = _fixture_snapshot()
    path = tmp_path / "cap.json"
    path.write_text("previous contents")
    snapshot.save(path)
    assert ConfigSnapshot.load(path).cells == snapshot.cells
    assert [p.name for p in tmp_path.iterdir()] == ["cap.json"]


def test_failed_save_preserves_target_and_reports_tmp(tmp_path, monkeypatch):
    """Simulated crash at the final rename: target intact, tmp visible.

    ``os.replace`` explodes and the cleanup ``os.unlink`` fails too (as
    it would if the process died); the half-written temp file must stay
    in the directory while the target keeps its old bytes.
    """
    snapshot = _fixture_snapshot()
    path = tmp_path / "cap.json"
    path.write_text("previous contents")

    def exploding_replace(src, dst):
        raise RuntimeError("simulated crash")

    def failing_unlink(name):
        raise OSError("simulated crash during cleanup")

    monkeypatch.setattr(os, "replace", exploding_replace)
    monkeypatch.setattr(os, "unlink", failing_unlink)
    with pytest.raises(RuntimeError, match="simulated crash"):
        snapshot.save(path)
    assert path.read_text() == "previous contents"
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != "cap.json"]
    assert len(leftovers) == 1 and leftovers[0].endswith(".tmp")


def test_failed_save_cleans_tmp_when_unlink_works(tmp_path, monkeypatch):
    snapshot = _fixture_snapshot()
    path = tmp_path / "cap.json"
    path.write_text("previous contents")
    monkeypatch.setattr(
        os, "replace",
        lambda src, dst: (_ for _ in ()).throw(RuntimeError("boom")),
    )
    with pytest.raises(RuntimeError):
        snapshot.save(path)
    assert path.read_text() == "previous contents"
    assert [p.name for p in tmp_path.iterdir()] == ["cap.json"]
