"""Tests for reporting-event semantics (TS 36.331 5.5.4 / paper Eq. 2)."""

import pytest

from repro.config.events import (
    EventConfig,
    EventType,
    PeriodicConfig,
    evaluate_entry,
    evaluate_leave,
)


def _a3(offset=3.0, hysteresis=1.0):
    return EventConfig(event=EventType.A3, offset=offset, hysteresis=hysteresis)


def test_a3_entry_requires_offset_plus_hysteresis():
    config = _a3(offset=3.0, hysteresis=1.0)
    serving = -100.0
    assert not evaluate_entry(config, serving, -97.0)   # +3: not enough
    assert not evaluate_entry(config, serving, -96.0)   # +4: boundary
    assert evaluate_entry(config, serving, -95.9)       # +4.1: enter


def test_a3_leave_mirrors_with_hysteresis():
    config = _a3(offset=3.0, hysteresis=1.0)
    serving = -100.0
    assert evaluate_leave(config, serving, -98.5)       # +1.5 < offset-hys
    assert not evaluate_leave(config, serving, -97.5)   # +2.5 > offset-hys


def test_a3_hysteresis_gap():
    """Between entry and leave there is a no-mans-land of 2*hys."""
    config = _a3(offset=3.0, hysteresis=1.0)
    serving = -100.0
    neighbor = -96.5  # serving + 3.5: neither enter (needs +4) nor leave (needs < +2)
    assert not evaluate_entry(config, serving, neighbor)
    assert not evaluate_leave(config, serving, neighbor)


def test_negative_a3_offset_enters_on_weaker_neighbor():
    """The paper's questionable T-Mobile configuration."""
    config = _a3(offset=-1.0, hysteresis=0.0)
    assert evaluate_entry(config, -100.0, -100.5)


def test_a1_and_a2_are_serving_only():
    a1 = EventConfig(event=EventType.A1, threshold1=-100.0, hysteresis=1.0)
    a2 = EventConfig(event=EventType.A2, threshold1=-110.0, hysteresis=1.0)
    assert evaluate_entry(a1, -95.0, None)
    assert not evaluate_entry(a1, -100.0, None)
    assert evaluate_entry(a2, -112.0, None)
    assert not evaluate_entry(a2, -110.0, None)
    assert not EventType.A1.needs_neighbor
    assert not EventType.A2.needs_neighbor


def test_a4_neighbor_threshold():
    a4 = EventConfig(event=EventType.A4, threshold1=-105.0, hysteresis=1.0)
    assert evaluate_entry(a4, None, -103.0)
    assert not evaluate_entry(a4, None, -104.5)


def test_a5_dual_condition():
    a5 = EventConfig(
        event=EventType.A5, threshold1=-110.0, threshold2=-105.0, hysteresis=1.0
    )
    assert evaluate_entry(a5, -112.0, -103.0)
    assert not evaluate_entry(a5, -108.0, -103.0)  # serving too strong
    assert not evaluate_entry(a5, -112.0, -104.5)  # candidate too weak


def test_a5_no_serving_requirement_at_minus_44():
    """Theta_S = -44 dBm accepts any serving level (paper Section 4.1)."""
    a5 = EventConfig(
        event=EventType.A5, threshold1=-44.0, threshold2=-114.0, hysteresis=1.0
    )
    assert evaluate_entry(a5, -60.0, -110.0)
    assert evaluate_entry(a5, -120.0, -110.0)


def test_a5_leave_when_either_condition_fails():
    a5 = EventConfig(
        event=EventType.A5, threshold1=-110.0, threshold2=-105.0, hysteresis=1.0
    )
    assert evaluate_leave(a5, -108.0, -103.0)
    assert evaluate_leave(a5, -113.0, -107.0)
    assert not evaluate_leave(a5, -113.0, -103.0)


def test_b_events_inter_rat():
    b1 = EventConfig(event=EventType.B1, threshold1=-100.0, hysteresis=0.5)
    b2 = EventConfig(
        event=EventType.B2, threshold1=-115.0, threshold2=-100.0, hysteresis=0.5
    )
    assert EventType.B1.is_inter_rat and EventType.B2.is_inter_rat
    assert evaluate_entry(b1, None, -98.0)
    assert evaluate_entry(b2, -117.0, -98.0)
    assert not evaluate_entry(b2, -113.0, -98.0)


def test_neighbor_offset_applied():
    config = _a3(offset=3.0, hysteresis=0.0)
    assert not evaluate_entry(config, -100.0, -98.0)
    assert evaluate_entry(config, -100.0, -98.0, neighbor_offset=2.0)


def test_periodic_always_enters():
    periodic = PeriodicConfig().as_event_config()
    assert evaluate_entry(periodic, None, None)
    assert not evaluate_leave(periodic, None, None)


def test_missing_measurements_fail_entry():
    config = _a3()
    assert not evaluate_entry(config, None, -90.0)
    assert not evaluate_entry(config, -90.0, None)


# -- validation ------------------------------------------------------------

def test_threshold_required():
    with pytest.raises(ValueError, match="requires threshold1"):
        EventConfig(event=EventType.A2)
    with pytest.raises(ValueError, match="requires threshold2"):
        EventConfig(event=EventType.A5, threshold1=-110.0)


def test_bad_metric_rejected():
    with pytest.raises(ValueError, match="metric"):
        EventConfig(event=EventType.A3, metric="sinr")


def test_nonstandard_ttt_rejected():
    with pytest.raises(ValueError, match="time-to-trigger"):
        EventConfig(event=EventType.A3, time_to_trigger_ms=300)


def test_negative_hysteresis_rejected():
    with pytest.raises(ValueError, match="hysteresis"):
        EventConfig(event=EventType.A3, hysteresis=-1.0)


def test_parameter_samples_names_resolve():
    """Every sample name must exist in the LTE registry."""
    from repro.cellnet.rat import RAT
    from repro.config.parameters import spec_by_name

    configs = [
        EventConfig(event=EventType.A1, threshold1=-100.0),
        EventConfig(event=EventType.A2, threshold1=-110.0),
        _a3(),
        EventConfig(event=EventType.A4, threshold1=-105.0),
        EventConfig(event=EventType.A5, threshold1=-110.0, threshold2=-105.0),
        EventConfig(event=EventType.B1, threshold1=-100.0),
        EventConfig(event=EventType.B2, threshold1=-115.0, threshold2=-100.0),
        PeriodicConfig().as_event_config(),
    ]
    for config in configs:
        for name, value in config.parameter_samples():
            spec = spec_by_name(RAT.LTE, name)
            assert spec.domain.contains(value), (name, value)
