"""Tests for mobility models."""

import numpy as np
import pytest

from repro.cellnet.deployment import city_by_name
from repro.cellnet.geo import Point
from repro.simulate.mobility import (
    Trajectory,
    grid_drive,
    highway_drive,
    static_position,
)


def test_trajectory_validation():
    with pytest.raises(ValueError, match="at least two"):
        Trajectory(waypoints=(Point(0, 0),), times_ms=(0,))
    with pytest.raises(ValueError, match="align"):
        Trajectory(waypoints=(Point(0, 0), Point(1, 0)), times_ms=(0,))
    with pytest.raises(ValueError, match="increasing"):
        Trajectory(waypoints=(Point(0, 0), Point(1, 0)), times_ms=(0, 0))


def test_position_interpolates():
    trajectory = Trajectory(
        waypoints=(Point(0, 0), Point(100, 0)), times_ms=(0, 1000)
    )
    assert trajectory.position(500) == Point(50.0, 0.0)
    assert trajectory.position(-5) == Point(0, 0)
    assert trajectory.position(5000) == Point(100, 0)


def test_position_multi_segment():
    trajectory = Trajectory(
        waypoints=(Point(0, 0), Point(100, 0), Point(100, 100)),
        times_ms=(0, 1000, 3000),
    )
    assert trajectory.position(2000) == Point(100.0, 50.0)


def test_grid_drive_duration_and_extent():
    city = city_by_name("Lafayette")
    rng = np.random.default_rng(3)
    trajectory = grid_drive(city, rng, duration_s=300.0, speed_kmh=40.0)
    assert trajectory.duration_ms >= 250_000
    extent = city.rings * city.site_spacing_m
    for waypoint in trajectory.waypoints:
        assert waypoint.distance_to(city.origin) <= extent * 1.1


def test_grid_drive_moves_at_configured_speed():
    city = city_by_name("Lafayette")
    rng = np.random.default_rng(3)
    trajectory = grid_drive(city, rng, duration_s=300.0, speed_kmh=36.0)
    distance = sum(
        a.distance_to(b)
        for a, b in zip(trajectory.waypoints, trajectory.waypoints[1:])
    )
    speed_mps = distance / (trajectory.duration_ms / 1000.0)
    assert speed_mps == pytest.approx(10.0, rel=0.05)


def test_grid_drive_deterministic():
    city = city_by_name("Lafayette")
    a = grid_drive(city, np.random.default_rng(3), duration_s=120.0)
    b = grid_drive(city, np.random.default_rng(3), duration_s=120.0)
    assert a.waypoints == b.waypoints


def test_highway_drive_speed_band():
    rng = np.random.default_rng(4)
    trajectory = highway_drive(Point(0, 0), Point(30_000, 0), rng, speed_kmh=105.0)
    total_s = trajectory.duration_ms / 1000.0
    speed_kmh = 30.0 / (total_s / 3600.0)
    assert 90.0 <= speed_kmh <= 120.0


def test_static_position():
    trajectory = static_position(Point(5, 5), duration_s=60.0)
    assert trajectory.position(30_000).distance_to(Point(5, 5)) < 0.1
