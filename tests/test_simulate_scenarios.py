"""Tests for canned scenarios."""

import numpy as np
import pytest

from repro.simulate.scenarios import drive_scenario


def test_single_city_scenario(scenario):
    assert scenario.name == "lafayette"
    assert scenario.cities[0].name == "Lafayette"
    assert len(scenario.plan.registry) > 100
    carriers = {c.carrier for c in scenario.plan.registry}
    assert carriers == {"A", "T", "V", "S"}


def test_highway_requires_corridor(scenario):
    with pytest.raises(ValueError, match="highway"):
        scenario.highway_trajectory(np.random.default_rng(0))


def test_tri_city_scenario_with_corridor():
    tri = drive_scenario("tri-city", seed=7)
    names = {c.name for c in tri.cities}
    assert names == {"Chicago", "Indianapolis", "Lafayette"}
    assert tri.highway_endpoints is not None
    trajectory = tri.highway_trajectory(np.random.default_rng(1))
    assert trajectory.duration_ms > 10 * 60 * 1000  # 40 km at ~105 km/h


def test_scenario_with_highway_flag():
    scenario = drive_scenario("lafayette", seed=7, with_highway=True)
    assert scenario.highway_endpoints is not None
    highway_cells = [c for c in scenario.plan.registry if "hwy" in c.city]
    assert highway_cells


def test_urban_trajectory_city_selection():
    tri = drive_scenario("tri-city", seed=7)
    trajectory = tri.urban_trajectory(
        np.random.default_rng(2), city_name="Lafayette", duration_s=60.0
    )
    lafayette = next(c for c in tri.cities if c.name == "Lafayette")
    assert trajectory.waypoints[0].distance_to(lafayette.origin) < 10_000
