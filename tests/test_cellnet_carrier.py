"""Tests for the carrier catalog (Table 3)."""

from repro.cellnet.carrier import CARRIERS, carrier_by_acronym, study_carriers, us_carriers
from repro.cellnet.rat import RAT


def test_thirty_carriers():
    """Dataset D2 spans 30 carriers (paper Section 5)."""
    assert len(CARRIERS) == 30


def test_fifteen_countries():
    assert len({c.country for c in CARRIERS.values()}) == 15


def test_paper_acronyms_present():
    for acronym in ("A", "T", "V", "S", "CM", "CU", "CT", "KT", "SK",
                    "ST", "SI", "MO", "TH", "CH", "CW", "TC", "NC"):
        assert acronym in CARRIERS


def test_cdma_family_carriers():
    """EVDO/CDMA1x only in Verizon, Sprint and China Telecom (Table 4)."""
    cdma = {a for a, c in CARRIERS.items() if RAT.EVDO in c.rats}
    assert cdma == {"V", "S", "CT"}


def test_att_band_holdings():
    att = carrier_by_acronym("A")
    for channel in (850, 1975, 2000, 5110, 5780, 9820):
        assert channel in att.lte_channels


def test_all_carriers_have_lte():
    for carrier in CARRIERS.values():
        assert RAT.LTE in carrier.rats
        assert carrier.lte_channels


def test_us_carriers_order():
    assert [c.acronym for c in us_carriers()] == ["A", "T", "V", "S"]


def test_study_carriers_are_the_papers_nine():
    assert [c.acronym for c in study_carriers()] == [
        "A", "T", "S", "V", "CM", "SK", "MO", "CH", "CW"
    ]


def test_channels_for_dispatch():
    verizon = carrier_by_acronym("V")
    assert verizon.channels_for(RAT.CDMA1X) == verizon.cdma_channels
    assert verizon.channels_for(RAT.LTE) == verizon.lte_channels


def test_is_us():
    assert carrier_by_acronym("A").is_us
    assert not carrier_by_acronym("CM").is_us
