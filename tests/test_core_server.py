"""Tests for the MMLab server orchestration."""

import numpy as np
import pytest

from repro.core.server import MMLabServer
from repro.simulate.traffic import Speedtest


@pytest.fixture
def mmlab_server(scenario):
    return MMLabServer(scenario, seed=5)


def test_register_participants(mmlab_server):
    a = mmlab_server.register("A")
    b = mmlab_server.register("T")
    assert a != b
    assert mmlab_server.pending_count(a) == 0


def test_type1_patch_flow(mmlab_server, scenario):
    participant = mmlab_server.register("A")
    origin = scenario.cities[0].origin
    patch_id = mmlab_server.push_type1(
        participant, [origin, origin.offset(800.0, 0.0)], observed_day=12.0
    )
    assert mmlab_server.pending_count(participant) == 1
    assert mmlab_server.run_pending(participant) == 1
    assert mmlab_server.pending_count(participant) == 0
    assert len(mmlab_server.archive) == 1
    samples = mmlab_server.harvest_config_samples()
    assert samples
    assert all(s.observed_day == 12.0 for s in samples)
    assert all(s.round_index == patch_id for s in samples)
    assert {s.carrier for s in samples} == {"A"}


def test_type2_patch_flow(mmlab_server, scenario):
    participant = mmlab_server.register("A")
    trajectory = scenario.urban_trajectory(np.random.default_rng(9), duration_s=240.0)
    mmlab_server.push_type2(participant, trajectory, Speedtest())
    mmlab_server.run_pending(participant)
    instances = mmlab_server.harvest_handoff_instances()
    # Short drive: instances may be few, but the pipeline must work and
    # carry throughput alignment when present.
    for instance in instances:
        assert instance.carrier == "A"


def test_run_all_pending(mmlab_server, scenario):
    origin = scenario.cities[0].origin
    for carrier in ("A", "T"):
        participant = mmlab_server.register(carrier)
        mmlab_server.push_type1(participant, [origin])
    assert mmlab_server.run_all_pending() == 2
    carriers = {log.carrier for log in mmlab_server.archive}
    assert carriers == {"A", "T"}


def test_type1_harvest_contains_no_handoffs(mmlab_server, scenario):
    participant = mmlab_server.register("A")
    mmlab_server.push_type1(participant, [scenario.cities[0].origin])
    mmlab_server.run_pending(participant)
    assert mmlab_server.harvest_handoff_instances() == []


def test_patch_ids_unique(mmlab_server, scenario):
    participant = mmlab_server.register("A")
    origin = scenario.cities[0].origin
    ids = {
        mmlab_server.push_type1(participant, [origin]) for _ in range(3)
    }
    assert len(ids) == 3


def test_run_pending_preserves_push_order(mmlab_server, scenario):
    """The queue drain is FIFO: archive order equals push order."""
    participant = mmlab_server.register("A")
    origin = scenario.cities[0].origin
    pushed = [
        mmlab_server.push_type1(participant, [origin.offset(200.0 * i, 0.0)])
        for i in range(5)
    ]
    assert mmlab_server.run_pending(participant) == 5
    assert [log.patch.patch_id for log in mmlab_server.archive] == pushed


def test_run_all_pending_interleaves_participants_in_id_order(mmlab_server, scenario):
    origin = scenario.cities[0].origin
    a = mmlab_server.register("A")
    t = mmlab_server.register("T")
    # Push in reverse participant order; execution still goes A then T.
    mmlab_server.push_type1(t, [origin])
    mmlab_server.push_type1(a, [origin])
    mmlab_server.push_type1(a, [origin.offset(500.0, 0.0)])
    assert mmlab_server.run_all_pending() == 3
    assert [log.participant_id for log in mmlab_server.archive] == [a, a, t]


def test_run_all_pending_on_process_backend_matches_serial(scenario):
    """Patches fan out over worker processes; archives stay identical."""
    from repro.core.server import MMLabServer
    from repro.pipeline import ProcessPoolBackend

    origin = scenario.cities[0].origin
    servers = [MMLabServer(scenario, seed=5) for _ in range(2)]
    for server in servers:
        for carrier in ("A", "T"):
            participant = server.register(carrier)
            server.push_type1(
                participant, [origin, origin.offset(800.0, 0.0)], observed_day=2.0
            )
    serial, pooled = servers
    assert serial.run_all_pending() == 2
    assert pooled.run_all_pending(backend=ProcessPoolBackend(workers=2)) == 2
    assert [log.log_bytes for log in pooled.archive] == [
        log.log_bytes for log in serial.archive
    ]
    assert pooled.pending_count(0) == 0


def test_streaming_harvest_matches_list_harvest(mmlab_server, scenario):
    participant = mmlab_server.register("A")
    mmlab_server.push_type1(participant, [scenario.cities[0].origin])
    mmlab_server.run_pending(participant)
    assert list(mmlab_server.iter_config_samples()) == (
        mmlab_server.harvest_config_samples()
    )
