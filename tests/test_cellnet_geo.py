"""Tests for planar geometry helpers."""

import math

import pytest

from repro.cellnet.geo import (
    Point,
    bounding_box,
    distance_m,
    hex_grid,
    points_within,
    walk_segment,
)


def test_distance():
    assert distance_m(Point(0, 0), Point(3, 4)) == 5.0


def test_offset_and_towards():
    p = Point(1.0, 2.0).offset(2.0, -1.0)
    assert (p.x, p.y) == (3.0, 1.0)
    mid = Point(0, 0).towards(Point(10, 0), 0.5)
    assert mid == Point(5.0, 0.0)


def test_towards_extrapolates():
    beyond = Point(0, 0).towards(Point(10, 0), 1.5)
    assert beyond.x == 15.0


def test_points_within():
    pts = [Point(0, 0), Point(1, 0), Point(10, 0)]
    close = points_within(Point(0, 0), 2.0, pts)
    assert Point(10, 0) not in close
    assert len(close) == 2


def test_walk_segment_endpoints():
    pts = list(walk_segment(Point(0, 0), Point(10, 0), 3.0))
    assert pts[0] == Point(0, 0)
    assert pts[-1] == Point(10, 0)
    for a, b in zip(pts, pts[1:]):
        assert a.distance_to(b) <= 3.0 + 1e-9


def test_walk_segment_zero_length():
    assert list(walk_segment(Point(1, 1), Point(1, 1), 5.0)) == [Point(1, 1)]


def test_walk_segment_requires_positive_step():
    with pytest.raises(ValueError):
        list(walk_segment(Point(0, 0), Point(1, 0), 0.0))


@pytest.mark.parametrize("rings,expected", [(0, 1), (1, 7), (2, 19), (3, 37)])
def test_hex_grid_site_count(rings, expected):
    assert len(hex_grid(Point(0, 0), 1000.0, rings)) == expected


def test_hex_grid_ring_distance():
    sites = hex_grid(Point(0, 0), 1000.0, 1)
    ring = sites[1:]
    for site in ring:
        assert site.distance_to(Point(0, 0)) == pytest.approx(1000.0)


def test_hex_grid_negative_rings_raises():
    with pytest.raises(ValueError):
        hex_grid(Point(0, 0), 1000.0, -1)


def test_bounding_box():
    lo, hi = bounding_box([Point(1, 5), Point(-2, 3), Point(4, -1)])
    assert (lo.x, lo.y) == (-2, -1)
    assert (hi.x, hi.y) == (4, 5)


def test_bounding_box_empty_raises():
    with pytest.raises(ValueError):
        bounding_box([])
