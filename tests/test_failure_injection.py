"""Failure-injection tests: the pipeline under adverse conditions."""

import numpy as np
import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.deployment import DeploymentPlan, city_by_name, deploy_city
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.cellnet.world import RadioEnvironment
from repro.core.crawler import ConfigCrawler
from repro.core.handoffs import extract_handoff_instances
from repro.rrc.broadcast import ConfigServer
from repro.rrc.codec import CodecError
from repro.rrc.diag import DiagError, DiagReader, DiagWriter
from repro.rrc.messages import MeasurementReport, Sib1, Sib3
from repro.ue.device import RrcState, UserEquipment


def test_ue_raises_outside_coverage(env, server):
    ue = UserEquipment(env, server, "A", seed=1)
    nowhere = Point(9_000_000.0, 9_000_000.0)
    with pytest.raises(RuntimeError, match="no A coverage"):
        ue.initial_camp(nowhere)


def test_radio_link_failure_reestablishes(env, server, scenario):
    """Drag a connected UE out of its serving cell's audible range."""
    ue = UserEquipment(env, server, "A", seed=2)
    origin = scenario.cities[0].origin
    first = ue.initial_camp(origin, 0)
    ue.connect(0)
    # Teleport far across the city: the serving cell drops out of the
    # measurement snapshot and the UE must re-establish.
    extent = scenario.cities[0].rings * scenario.cities[0].site_spacing_m
    far = origin.offset(extent * 0.9, 0.0)
    ue.tick(200, far)
    assert ue.serving is not None
    assert ue.serving.cell_id != first.cell_id
    assert ue.state is RrcState.CONNECTED
    assert ue.is_interrupted(300)  # re-establishment outage


def test_crawler_rejects_truncated_log(env, server, lte_cell):
    writer = DiagWriter.in_memory()
    for message in server.sib_messages(lte_cell):
        writer.write(0, message)
    data = writer.getvalue()
    with pytest.raises((DiagError, CodecError)):
        ConfigCrawler.crawl(data[: len(data) - 7])


def test_crawler_tolerates_out_of_order_sibs():
    """A SIB3 with no preceding SIB1 (mid-capture start) is dropped."""
    writer = DiagWriter.in_memory()
    writer.write(0, Sib3())
    writer.write(10, Sib1(carrier="A", gci=5, channel=850, rat="LTE"))
    writer.write(20, Sib3())
    snapshots = ConfigCrawler.crawl(writer.getvalue())
    assert [s.gci for s in snapshots] == [5]


def test_extractor_handles_report_without_handover():
    """A measurement report that the network ignored must not produce
    an instance."""
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1(carrier="A", gci=1, channel=850, rat="LTE"))
    writer.write(100, MeasurementReport(event="A2"))
    instances = extract_handoff_instances(writer.getvalue(), "A")
    assert instances == []


def test_extractor_handles_trace_ending_mid_handover():
    """Sib1 of the new cell arrives but the trace ends before its PHY
    measurement: the instance is kept with rsrp_after unset."""
    from repro.rrc.messages import MobilityControlInfo, RrcConnectionReconfiguration

    writer = DiagWriter.in_memory()
    writer.write(0, Sib1(carrier="A", gci=1, channel=850, rat="LTE"))
    writer.write(100, MeasurementReport(event="A3"))
    writer.write(250, RrcConnectionReconfiguration(
        mobility=MobilityControlInfo(target_carrier="A", target_gci=2,
                                     target_channel=850)))
    writer.write(300, Sib1(carrier="A", gci=2, channel=850, rat="LTE"))
    instances = extract_handoff_instances(writer.getvalue(), "A")
    assert len(instances) == 1
    assert instances[0].rsrp_after is None
    assert instances[0].decisive_event == "A3"


def test_single_cell_island():
    """A one-cell deployment: the UE camps and stays; no handoffs."""
    plan = DeploymentPlan()
    cell = Cell(cell_id=CellId("A", 1), rat=RAT.LTE, channel=850, pci=1,
                location=Point(0.0, 0.0), city="Island")
    plan.registry.add(cell)
    env = RadioEnvironment(plan)
    server = ConfigServer(env, seed=1)
    ue = UserEquipment(env, server, "A", seed=1)
    ue.initial_camp(Point(50.0, 0.0), 0)
    ue.connect(0)
    for tick in range(1, 50):
        events = ue.tick(tick * 200, Point(50.0 + tick, 0.0))
        assert events == []
    assert ue.serving.cell_id == cell.cell_id


def test_empty_city_has_no_carrier_cells():
    plan = DeploymentPlan()
    deploy_city(city_by_name("Oslo"), plan, seed=3)
    assert plan.registry.by_carrier("A") == []  # AT&T not in Norway
