"""Tests for the radio environment."""

import numpy as np
import pytest

from repro.cellnet.rat import RAT


def test_cells_near_filters(env, scenario):
    origin = scenario.cities[0].origin
    all_near = env.cells_near(origin, radius_m=2000.0)
    att = env.cells_near(origin, carrier="A", radius_m=2000.0)
    lte = env.cells_near(origin, carrier="A", rat=RAT.LTE, radius_m=2000.0)
    assert len(all_near) >= len(att) >= len(lte) > 0
    assert all(c.carrier == "A" for c in att)
    assert all(c.rat is RAT.LTE for c in lte)


def test_cells_near_radius_respected(env, scenario):
    origin = scenario.cities[0].origin
    for cell in env.cells_near(origin, radius_m=1500.0):
        assert cell.location.distance_to(origin) <= 1500.0


def test_measure_all_sorted_strongest_first(env, scenario):
    origin = scenario.cities[0].origin
    measurements = env.measure_all(origin, "A")
    rsrps = [m.rsrp_dbm for m in measurements]
    assert rsrps == sorted(rsrps, reverse=True)


def test_strongest_cell(env, scenario):
    origin = scenario.cities[0].origin
    best = env.strongest_cell(origin, "A")
    assert best is not None
    measurements = env.measure_all(origin, "A")
    assert best.cell_id == measurements[0].cell.cell_id


def test_snapshot_matches_measure_all(env, scenario):
    origin = scenario.cities[0].origin
    snap = env.snapshot(origin, "A")
    for cell in snap.cells[:10]:
        direct = env.radio.rsrp_dbm(cell, origin)
        assert snap.rsrp(cell) == pytest.approx(direct)


def test_snapshot_metric_arrays_consistent(env, scenario):
    origin = scenario.cities[0].origin
    snap = env.snapshot(origin, "A")
    rsrp, rsrq, sinr = snap.metric_arrays()
    assert len(rsrp) == len(snap.cells)
    for i, cell in enumerate(snap.cells[:8]):
        m = snap.measure(cell)
        assert m.rsrp_dbm == pytest.approx(float(rsrp[i]))
        assert m.rsrq_db == pytest.approx(float(rsrq[i]), abs=1e-6)
        assert m.sinr_db == pytest.approx(float(sinr[i]), abs=1e-6)


def test_snapshot_cache_is_location_stable(env, scenario):
    origin = scenario.cities[0].origin
    a = env.snapshot(origin, "A")
    b = env.snapshot(origin.offset(1.0, 0.0), "A")
    # Same 200 m grid square: the same prepared cell list is reused.
    assert [c.cell_id for c in a.cells] == [c.cell_id for c in b.cells]


def test_snapshot_strongest_by_rat(env, scenario):
    origin = scenario.cities[0].origin
    snap = env.snapshot(origin, "A")
    best_lte = snap.strongest(rat=RAT.LTE)
    assert best_lte is not None and best_lte.rat is RAT.LTE


def test_co_channel_interferers_same_channel_only(env, scenario):
    origin = scenario.cities[0].origin
    cell = env.cells_near(origin, carrier="A", rat=RAT.LTE)[0]
    for interferer in env.co_channel_interferers(cell, origin):
        assert interferer.channel == cell.channel
        assert interferer.rat is cell.rat
        assert interferer.cell_id != cell.cell_id


def test_co_channel_interferers_match_bruteforce(env, scenario):
    """The spatial-index route returns exactly the brute-force set."""
    origin = scenario.cities[0].origin
    for cell in env.cells_near(origin, carrier="A")[:5]:
        expected = sorted(
            (
                c
                for c in env.registry
                if c.rat is cell.rat
                and c.channel == cell.channel
                and c.cell_id != cell.cell_id
                and c.location.distance_to(origin) <= env.audible_radius_m
            ),
            key=lambda c: c.cell_id,
        )
        assert env.co_channel_interferers(cell, origin) == expected


def _fresh_env(scenario, cache_size):
    from repro.cellnet.world import RadioEnvironment

    env = RadioEnvironment(scenario.plan)
    env.snapshot_cache_size = cache_size
    return env


def _far_apart_points(scenario, n):
    origin = scenario.cities[0].origin
    # 400 m apart: each lands in its own 200 m snapshot-cache square.
    return [origin.offset(400.0 * i, 0.0) for i in range(n)]


def test_snapshot_cache_evicts_least_recently_used(scenario):
    env = _fresh_env(scenario, cache_size=2)
    a, b, c = _far_apart_points(scenario, 3)
    env.snapshot(a, "A")
    env.snapshot(b, "A")
    key_a, key_b = list(env._snapshot_cache)
    env.snapshot(c, "A")
    # Oldest entry (a) evicted, not the whole cache.
    assert key_a not in env._snapshot_cache
    assert key_b in env._snapshot_cache
    assert len(env._snapshot_cache) == 2


def test_snapshot_cache_hit_refreshes_entry(scenario):
    env = _fresh_env(scenario, cache_size=2)
    a, b, c = _far_apart_points(scenario, 3)
    env.snapshot(a, "A")
    env.snapshot(b, "A")
    key_a, key_b = list(env._snapshot_cache)
    env.snapshot(a, "A")  # Hit: a becomes most recently used.
    env.snapshot(c, "A")  # Evicts b, the now-least-recent entry.
    assert key_a in env._snapshot_cache
    assert key_b not in env._snapshot_cache


def test_snapshot_cache_hit_reuses_prepared(scenario):
    env = _fresh_env(scenario, cache_size=8)
    origin = scenario.cities[0].origin
    first = env.snapshot(origin, "A")
    second = env.snapshot(origin.offset(1.0, 0.0), "A")
    assert second.prepared is first.prepared


def test_get_cell_roundtrip(env, scenario):
    cell = next(iter(scenario.plan.registry))
    assert env.get_cell(cell.cell_id) is cell
