"""Tests for the configuration broadcast server."""

import numpy as np
import pytest

from repro.cellnet.rat import RAT
from repro.rrc.broadcast import ConfigServer
from repro.rrc.messages import LegacySystemInfo, Sib1, Sib3, Sib4, Sib5


def test_sib_sequence_starts_with_identity(server, lte_cell):
    sibs = server.sib_messages(lte_cell)
    assert isinstance(sibs[0], Sib1)
    assert sibs[0].gci == lte_cell.cell_id.gci
    assert isinstance(sibs[1], Sib3)
    assert isinstance(sibs[2], Sib4)


def test_sib5_lists_real_neighbor_layers(server, lte_cell, env):
    sibs = server.sib_messages(lte_cell)
    sib5 = next((s for s in sibs if isinstance(s, Sib5)), None)
    assert sib5 is not None
    deployed = {
        c.channel
        for c in env.cells_near(lte_cell.location, carrier=lte_cell.carrier,
                                radius_m=4000.0)
        if c.rat is RAT.LTE
    }
    for layer in sib5.layers:
        assert layer.dl_carrier_freq in deployed
        assert layer.dl_carrier_freq != lte_cell.channel


def test_base_config_cached(server, lte_cell):
    assert server.lte_config(lte_cell) is server.lte_config(lte_cell)


def test_legacy_cell_broadcasts_system_info(server, scenario):
    legacy = next(
        c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.UMTS
    )
    messages = server.sib_messages(legacy)
    assert len(messages) == 1
    assert isinstance(messages[0], LegacySystemInfo)
    assert messages[0].rat == "UMTS"


def test_lte_config_rejects_legacy_cell(server, scenario):
    legacy = next(
        c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.UMTS
    )
    with pytest.raises(ValueError, match="not an LTE cell"):
        server.lte_config(legacy)


def test_connection_reconfiguration_carries_meas_config(server, lte_cell):
    reconfiguration = server.connection_reconfiguration(lte_cell)
    assert reconfiguration.meas_config is not None
    assert reconfiguration.mobility is None
    assert reconfiguration.meas_config.events  # at least A2 armed


def test_observed_config_with_rng_may_differ(server, lte_cell):
    base = server.lte_config(lte_cell)
    rng = np.random.default_rng(0)
    observed = [
        server.observed_lte_config(lte_cell, rng, days_since_first=0.0)
        for _ in range(40)
    ]
    # Idle part never churns at day 0; measurement part may.
    assert all(o.serving == base.serving for o in observed)


def test_config_consistency_between_sibs_and_lte_config(server, lte_cell):
    """The SIB content must be exactly the cell's configuration."""
    sibs = server.sib_messages(lte_cell)
    config = server.lte_config(lte_cell)
    sib3 = next(s for s in sibs if isinstance(s, Sib3))
    assert sib3.config == config.serving
