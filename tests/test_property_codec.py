"""Property-based tests for the binary codec and diag format."""

import math

from hypothesis import given, settings, strategies as st

from repro.rrc.codec import CodecError, decode_message, encode_message
from repro.rrc.diag import DiagError, DiagReader, DiagWriter
from repro.rrc.messages import LegacySystemInfo, MeasResult, MeasurementReport, Sib1

# Finite doubles: the codec carries radio values, never NaN/inf.
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_names = st.text(min_size=0, max_size=24)


@given(
    carrier=_names,
    gci=st.integers(min_value=0, max_value=2**40),
    pci=st.integers(min_value=0, max_value=503),
    channel=st.integers(min_value=0, max_value=70_000),
    q=_floats,
    city=_names,
)
def test_sib1_roundtrip(carrier, gci, pci, channel, q, city):
    message = Sib1(carrier=carrier, gci=gci, pci=pci, channel=channel,
                   rat="LTE", q_rx_lev_min=q, city=city)
    decoded = decode_message(encode_message(message))
    assert decoded == message


@given(
    values=st.dictionaries(
        st.text(min_size=1, max_size=12),
        st.one_of(
            st.integers(min_value=-2**40, max_value=2**40),
            _floats,
            st.booleans(),
            st.none(),
            st.lists(st.integers(min_value=-1000, max_value=1000), max_size=6),
        ),
        max_size=8,
    )
)
def test_arbitrary_payload_roundtrip(values):
    message = LegacySystemInfo(carrier="A", gci=1, channel=128, rat="GSM",
                               fields=values)
    decoded = decode_message(encode_message(message))
    assert decoded.fields == values


@given(st.binary(max_size=200))
def test_decoder_never_crashes_unexpectedly(buf):
    """Garbage input either decodes or raises CodecError — nothing else."""
    try:
        decode_message(buf)
    except CodecError:
        pass
    except (UnicodeDecodeError, TypeError):
        # Decoded strings/payloads may be structurally wrong in ways the
        # message constructors reject; that also surfaces as an error,
        # never silent misparsing.
        pass


@given(
    timestamps=st.lists(st.integers(min_value=0, max_value=2**40),
                        min_size=1, max_size=10),
)
def test_diag_roundtrip_preserves_order_and_count(timestamps):
    writer = DiagWriter.in_memory()
    for i, t in enumerate(timestamps):
        writer.write(t, Sib1(carrier="A", gci=i))
    records = DiagReader(writer.getvalue()).records()
    assert [r.timestamp_ms for r in records] == timestamps
    assert [r.message.gci for r in records] == list(range(len(timestamps)))


@given(st.binary(max_size=100))
def test_diag_reader_rejects_garbage(junk):
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1())
    data = writer.getvalue() + junk
    try:
        DiagReader(data).records()
    except (DiagError, CodecError):
        pass


@given(
    rsrps=st.lists(st.floats(min_value=-140, max_value=-44), min_size=1, max_size=8)
)
def test_measurement_report_roundtrip(rsrps):
    report = MeasurementReport(
        event="A3",
        serving=MeasResult(carrier="A", gci=0, rsrp_dbm=rsrps[0]),
        neighbors=tuple(
            MeasResult(carrier="A", gci=i + 1, rsrp_dbm=v)
            for i, v in enumerate(rsrps[1:])
        ),
    )
    decoded = decode_message(encode_message(report))
    assert decoded.serving.rsrp_dbm == rsrps[0]
    assert [n.rsrp_dbm for n in decoded.neighbors] == rsrps[1:]
