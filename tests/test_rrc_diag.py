"""Tests for the modem diag log format."""

import pytest

from repro.rrc.diag import DiagError, DiagReader, DiagWriter
from repro.rrc.messages import PhyServingMeas, Sib1


def test_write_read_roundtrip():
    writer = DiagWriter.in_memory()
    messages = [Sib1(carrier="A", gci=i) for i in range(5)]
    for i, message in enumerate(messages):
        writer.write(i * 100, message)
    records = DiagReader(writer.getvalue()).records()
    assert [r.timestamp_ms for r in records] == [0, 100, 200, 300, 400]
    assert [r.message for r in records] == messages


def test_empty_log():
    assert DiagReader(b"").records() == []


def test_bad_magic_raises():
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1())
    data = bytearray(writer.getvalue())
    data[0] ^= 0xFF
    with pytest.raises(DiagError, match="bad magic"):
        DiagReader(bytes(data)).records()


def test_checksum_mismatch_raises():
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1(carrier="A", gci=1))
    data = bytearray(writer.getvalue())
    data[-1] ^= 0xFF  # corrupt payload
    with pytest.raises(DiagError, match="checksum"):
        DiagReader(bytes(data)).records()


def test_truncated_log_raises():
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1(carrier="A", gci=1, city="Chicago"))
    data = writer.getvalue()
    with pytest.raises(DiagError, match="truncated"):
        DiagReader(data[:-4]).records()


def test_error_reports_record_index():
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1(gci=1))
    writer.write(1, Sib1(gci=2))
    data = bytearray(writer.getvalue())
    data[-1] ^= 0xFF
    with pytest.raises(DiagError, match="record 1"):
        DiagReader(bytes(data)).records()


def test_records_written_counter():
    writer = DiagWriter.in_memory()
    writer.write(0, Sib1())
    writer.write(1, PhyServingMeas())
    assert writer.records_written == 2


def test_file_roundtrip(tmp_path):
    writer = DiagWriter.in_memory()
    writer.write(7, Sib1(carrier="V", gci=2))
    path = tmp_path / "trace.diag"
    path.write_bytes(writer.getvalue())
    records = DiagReader.from_file(path).records()
    assert records[0].timestamp_ms == 7
    assert records[0].message.carrier == "V"


def test_getvalue_requires_memory_stream(tmp_path):
    with open(tmp_path / "x.diag", "wb") as f:
        writer = DiagWriter(f)
        writer.write(0, Sib1())
        with pytest.raises(TypeError):
            writer.getvalue()
