"""Tests for legacy-RAT idle reselection."""

import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.legacy import (
    Cdma1xCellConfig,
    EvdoCellConfig,
    GsmCellConfig,
    UmtsCellConfig,
)
from repro.ue.legacy_reselection import (
    LTE_RETURN_PERSISTENCE_MS,
    LegacyReselectionEngine,
)
from repro.ue.measurement import FilteredMeasurement


def _cell(gci, rat, channel):
    return Cell(cell_id=CellId("A", gci), rat=rat, channel=channel, pci=0,
                location=Point(0, 0))


def _fm(cell, rsrp):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=-11.0)


UMTS_SERVING = _cell(1, RAT.UMTS, 4385)
UMTS_NEIGHBOR = _cell(2, RAT.UMTS, 4385)
LTE_NEIGHBOR = _cell(3, RAT.LTE, 850)
GSM_SERVING = _cell(4, RAT.GSM, 128)
GSM_NEIGHBOR = _cell(5, RAT.GSM, 190)
EVDO_SERVING = _cell(6, RAT.EVDO, 466)
EVDO_NEIGHBOR = _cell(7, RAT.EVDO, 466)


# -- UMTS ----------------------------------------------------------------

def test_umts_returns_to_lte_via_sib19():
    engine = LegacyReselectionEngine()
    config = UmtsCellConfig(priority_eutra=5, priority_serving=2,
                            thresh_high_eutra=8.0, q_rxlevmin_eutra=-122.0,
                            t_reselection_eutra=2)
    serving = _fm(UMTS_SERVING, -95.0)
    lte = [_fm(LTE_NEIGHBOR, -100.0)]  # level 22 > 8
    assert engine.step(0, serving, config, lte) is None       # persistence
    assert engine.step(1000, serving, config, lte) is None
    decision = engine.step(2000, serving, config, lte)
    assert decision is not None
    assert decision.priority_class == "higher"
    assert decision.cell.rat is RAT.LTE


def test_umts_lte_below_threshold_ignored():
    engine = LegacyReselectionEngine()
    config = UmtsCellConfig(thresh_high_eutra=8.0, q_rxlevmin_eutra=-122.0)
    serving = _fm(UMTS_SERVING, -95.0)
    weak_lte = [_fm(LTE_NEIGHBOR, -118.0)]  # level 4 < 8
    for t in (0, 2000, 4000, 8000):
        assert engine.step(t, serving, config, weak_lte) is None


def test_umts_no_lte_return_when_priority_not_higher():
    engine = LegacyReselectionEngine()
    config = UmtsCellConfig(priority_eutra=2, priority_serving=2)
    serving = _fm(UMTS_SERVING, -95.0)
    lte = [_fm(LTE_NEIGHBOR, -90.0)]
    for t in (0, 2000, 4000):
        assert engine.step(t, serving, config, lte) is None


def test_umts_intra_reselection_with_hysteresis():
    engine = LegacyReselectionEngine()
    config = UmtsCellConfig(q_hyst_1s=4.0, t_reselection_s=1)
    serving = _fm(UMTS_SERVING, -100.0)
    close = [_fm(UMTS_NEIGHBOR, -97.0)]   # within hysteresis
    assert engine.step(0, serving, config, close) is None
    assert engine.step(1000, serving, config, close) is None
    strong = [_fm(UMTS_NEIGHBOR, -94.0)]
    engine.reset()
    engine.step(0, serving, config, strong)
    decision = engine.step(1000, serving, config, strong)
    assert decision is not None and decision.priority_class == "equal"


def test_umts_lte_preferred_over_intra():
    engine = LegacyReselectionEngine()
    config = UmtsCellConfig(priority_eutra=5, priority_serving=2,
                            thresh_high_eutra=8.0, q_hyst_1s=4.0,
                            t_reselection_eutra=1, t_reselection_s=1)
    serving = _fm(UMTS_SERVING, -100.0)
    both = [_fm(UMTS_NEIGHBOR, -90.0), _fm(LTE_NEIGHBOR, -100.0)]
    engine.step(0, serving, config, both)
    decision = engine.step(1000, serving, config, both)
    assert decision is not None
    assert decision.cell.rat is RAT.LTE  # priority beats strength


# -- GSM -------------------------------------------------------------------

def test_gsm_c2_reselection():
    engine = LegacyReselectionEngine()
    config = GsmCellConfig(cell_reselect_hysteresis=4.0, c2_enabled=1,
                           cell_reselect_offset=0.0)
    serving = _fm(GSM_SERVING, -100.0)
    strong = [_fm(GSM_NEIGHBOR, -94.0)]
    engine.step(0, serving, config, strong)
    assert engine.step(2000, serving, config, strong) is None
    decision = engine.step(5000, serving, config, strong)
    assert decision is not None and decision.priority_class == "equal"


def test_gsm_offset_helps_candidate():
    engine = LegacyReselectionEngine()
    config = GsmCellConfig(cell_reselect_hysteresis=4.0, c2_enabled=1,
                           cell_reselect_offset=6.0)
    serving = _fm(GSM_SERVING, -100.0)
    # Raw margin only 2 dB, but the offset lifts C2 above hysteresis.
    boosted = [_fm(GSM_NEIGHBOR, -98.0)]
    engine.step(0, serving, config, boosted)
    assert engine.step(5000, serving, config, boosted) is not None


def test_gsm_returns_to_lte():
    engine = LegacyReselectionEngine()
    config = GsmCellConfig()
    serving = _fm(GSM_SERVING, -85.0)
    lte = [_fm(LTE_NEIGHBOR, -100.0)]
    engine.step(0, serving, config, lte)
    decision = engine.step(LTE_RETURN_PERSISTENCE_MS, serving, config, lte)
    assert decision is not None and decision.priority_class == "higher"


# -- CDMA family --------------------------------------------------------------

@pytest.mark.parametrize("config", [EvdoCellConfig(), Cdma1xCellConfig()])
def test_cdma_pilot_comparison(config):
    engine = LegacyReselectionEngine()
    serving = _fm(EVDO_SERVING, -100.0)
    strong = [_fm(EVDO_NEIGHBOR, -95.0)]
    engine.step(0, serving, config, strong)
    decision = engine.step(3000, serving, config, strong)
    assert decision is not None and decision.priority_class == "equal"


def test_cdma_within_t_comp_stays():
    engine = LegacyReselectionEngine()
    config = Cdma1xCellConfig(t_comp=2.5)
    serving = _fm(EVDO_SERVING, -100.0)
    close = [_fm(EVDO_NEIGHBOR, -98.0)]  # 2 dB < t_comp
    for t in (0, 3000, 6000):
        assert engine.step(t, serving, config, close) is None


def test_flapping_candidate_resets_timer():
    engine = LegacyReselectionEngine()
    config = UmtsCellConfig(q_hyst_1s=4.0, t_reselection_s=2)
    serving = _fm(UMTS_SERVING, -100.0)
    strong = [_fm(UMTS_NEIGHBOR, -94.0)]
    weak = [_fm(UMTS_NEIGHBOR, -99.0)]
    engine.step(0, serving, config, strong)
    engine.step(1000, serving, config, weak)    # drops out: timer cleared
    engine.step(2000, serving, config, strong)  # restart
    assert engine.step(3000, serving, config, strong) is None
    assert engine.step(4000, serving, config, strong) is not None


def test_rejects_non_legacy_config():
    engine = LegacyReselectionEngine()
    with pytest.raises(TypeError):
        engine.step(0, _fm(UMTS_SERVING, -100.0), object(), [])
