"""Tests for the work-unit execution backends."""

import time
from dataclasses import dataclass

import pytest

from repro.pipeline import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    WorkUnit,
    clear_process_cache,
    process_cached,
    resolve_backend,
)


@dataclass(frozen=True)
class SquareUnit(WorkUnit):
    """Toy unit: picklable, deterministic, order-revealing."""

    unit_id: int
    value: int

    def run(self) -> int:
        return self.value * self.value


@dataclass(frozen=True)
class SlowFirstUnit(WorkUnit):
    """Unit 0 finishes last, exercising the reorder buffer."""

    unit_id: int

    def run(self) -> int:
        if self.unit_id == 0:
            time.sleep(0.2)
        return self.unit_id


@dataclass(frozen=True)
class FailingUnit(WorkUnit):
    unit_id: int

    def run(self) -> int:
        raise RuntimeError(f"unit {self.unit_id} failed")


def test_serial_backend_orders_by_unit_id():
    units = [SquareUnit(unit_id=i, value=i) for i in (3, 0, 2, 1)]
    assert list(SerialBackend().run(units)) == [0, 1, 4, 9]


def test_serial_backend_streams():
    units = [SquareUnit(unit_id=i, value=i) for i in range(3)]
    stream = SerialBackend().run(units)
    assert next(stream) == 0  # results available before full consumption


def test_process_pool_matches_serial():
    units = [SquareUnit(unit_id=i, value=i + 1) for i in range(20)]
    serial = list(SerialBackend().run(units))
    pooled = list(ProcessPoolBackend(workers=2).run(units))
    assert pooled == serial


@pytest.mark.parametrize("chunk_size", [1, 3, 7, 100])
def test_process_pool_chunking_preserves_order(chunk_size):
    units = [SquareUnit(unit_id=i, value=i) for i in range(11)]
    backend = ProcessPoolBackend(workers=2, chunk_size=chunk_size)
    assert list(backend.run(units)) == [i * i for i in range(11)]


def test_process_pool_reorders_out_of_order_completions():
    units = [SlowFirstUnit(unit_id=i) for i in range(6)]
    backend = ProcessPoolBackend(workers=2, chunk_size=1)
    assert list(backend.run(units)) == list(range(6))


def test_process_pool_empty_batch():
    assert list(ProcessPoolBackend(workers=2).run([])) == []


def test_process_pool_propagates_unit_errors():
    units = [FailingUnit(unit_id=0)]
    with pytest.raises(RuntimeError, match="unit 0 failed"):
        list(ProcessPoolBackend(workers=2).run(units))


def test_process_pool_rejects_bad_chunk_size():
    with pytest.raises(ValueError):
        ProcessPoolBackend(workers=2, chunk_size=0)


def test_resolve_backend():
    assert isinstance(resolve_backend(), SerialBackend)
    assert isinstance(resolve_backend(1), SerialBackend)
    pool = resolve_backend(3)
    assert isinstance(pool, ProcessPoolBackend)
    assert pool.workers == 3
    explicit = SerialBackend()
    assert resolve_backend(8, backend=explicit) is explicit
    # Both backend classes satisfy the protocol.
    assert isinstance(SerialBackend(), ExecutionBackend)
    assert isinstance(pool, ExecutionBackend)


def test_process_cached_builds_once():
    clear_process_cache()
    calls = []

    def factory():
        calls.append(1)
        return object()

    first = process_cached(("test-key", 1), factory)
    second = process_cached(("test-key", 1), factory)
    assert first is second
    assert len(calls) == 1
    clear_process_cache()
    third = process_cached(("test-key", 1), factory)
    assert third is not first
    clear_process_cache()
