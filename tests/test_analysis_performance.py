"""Tests for the performance analyses (Figs. 6-10) on synthetic instances."""

import pytest

from repro.core.analysis.performance import (
    ConfigGroup,
    a5_signed_split,
    dominant_config_groups,
    idle_rsrp_change,
    radio_impact_pairs,
    rsrp_change_by_event,
    throughput_by_config,
)
from repro.datasets.records import HandoffInstance
from repro.datasets.store import HandoffInstanceStore


def _active(event="A3", before=-108.0, after=-100.0, config=None, metric="rsrp",
            throughput=2e6, carrier="A"):
    return HandoffInstance(
        kind="active", carrier=carrier, time_ms=0, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850, intra_freq=True,
        decisive_event=event, decisive_metric=metric,
        decisive_config=config or {"offset": 3.0, "hysteresis": 1.0},
        rsrp_before=before, rsrp_after=after,
        min_throughput_before_bps=throughput,
    )


def _idle(intra=True, priority_class="equal", before=-110.0, after=-104.0):
    return HandoffInstance(
        kind="idle", carrier="A", time_ms=0, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850 if intra else 9820,
        intra_freq=intra, priority_class=priority_class,
        rsrp_before=before, rsrp_after=after,
    )


def test_rsrp_change_report():
    store = HandoffInstanceStore([
        _active(after=-100.0), _active(after=-110.0), _active(event="A5", after=-112.0),
    ])
    report = rsrp_change_by_event(store, "A")
    assert report.improved["A3"] == pytest.approx(0.5)
    assert report.improved["A5"] == 0.0
    assert len(report.scatter["A3"]) == 2
    assert report.delta_cdf["A3"]


def test_improved_with_margin():
    store = HandoffInstanceStore([_active(after=-110.0)])  # delta -2
    report = rsrp_change_by_event(store, "A")
    assert report.improved["A3"] == 0.0
    assert report.improved_with_margin["A3"] == 1.0


def test_a5_signed_split():
    permissive = _active(
        event="A5", after=-112.0,
        config={"threshold1": -44.0, "threshold2": -114.0, "hysteresis": 1.0},
    )
    strict = _active(
        event="A5", after=-100.0,
        config={"threshold1": -118.0, "threshold2": -110.0, "hysteresis": 1.0},
    )
    store = HandoffInstanceStore([permissive, strict])
    split = a5_signed_split(store, "A")
    assert len(split["A5"]) == 2
    assert len(split["A5(-)"]) == 1  # threshold2 < threshold1
    assert len(split["A5(+)"]) == 1


def test_throughput_by_config_grouping():
    store = HandoffInstanceStore([
        _active(config={"offset": 3.0, "hysteresis": 1.0}, throughput=5e6),
        _active(config={"offset": 12.0, "hysteresis": 1.0}, throughput=0.4e6),
    ])
    groups = [
        ConfigGroup(label="A3(3dB)", event="A3", key="offset", value=3.0),
        ConfigGroup(label="A3(12dB)", event="A3", key="offset", value=12.0),
    ]
    boxes = throughput_by_config(store, "A", groups)
    assert boxes["A3(3dB)"].median == 5e6
    assert boxes["A3(12dB)"].median == 0.4e6


def test_dominant_config_groups():
    store = HandoffInstanceStore([
        _active(config={"offset": 3.0, "hysteresis": 1.0}),
        _active(config={"offset": 3.0, "hysteresis": 1.0}),
        _active(event="A5", config={"threshold1": -44.0, "threshold2": -114.0}),
    ])
    groups = dominant_config_groups(store, "A", top=1)
    labels = [g.label for g in groups]
    assert "A3(3dB)" in labels
    assert any(label.startswith("A5(") for label in labels)
    assert "P" in labels


def test_radio_impact_pairs_monotone_inputs():
    store = HandoffInstanceStore([
        _active(config={"offset": 3.0, "hysteresis": 1.0}, before=-105.0, after=-101.0),
        _active(config={"offset": 12.0, "hysteresis": 1.0}, before=-115.0, after=-101.0),
        _active(event="A5", before=-112.0, after=-100.0,
                config={"threshold1": -110.0, "threshold2": -104.0}),
    ])
    pairs = radio_impact_pairs(store, "A")
    assert set(pairs["a3_offset_vs_delta"]) == {3.0, 12.0}
    assert pairs["a3_offset_vs_delta"][12.0].median == pytest.approx(14.0)
    assert pairs["a5_serving_vs_old"][-110.0].median == -112.0
    assert pairs["a5_candidate_vs_new"][-104.0].median == -100.0


def test_idle_rsrp_change_classes():
    store = HandoffInstanceStore([
        _idle(intra=True),
        _idle(intra=False, priority_class="higher", after=-115.0),
        _idle(intra=False, priority_class="lower"),
        _idle(intra=False, priority_class="equal"),
    ])
    classes = idle_rsrp_change(store)
    assert classes["intra"]["n"] == 1
    assert classes["non-intra(H)"]["improved"] == 0.0
    assert classes["non-intra(L)"]["improved"] == 1.0
    assert classes["non-intra(E)"]["n"] == 1


def test_idle_rsrp_change_carrier_filter():
    store = HandoffInstanceStore([_idle()])
    pooled = idle_rsrp_change(store)
    filtered = idle_rsrp_change(store, carrier="T")
    assert pooled["intra"]["n"] == 1
    assert filtered["intra"]["n"] == 0
