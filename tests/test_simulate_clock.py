"""Tests for the simulation clock."""

import pytest

from repro.simulate.clock import SimulationClock


def test_advance():
    clock = SimulationClock(tick_ms=200)
    assert clock.now_ms == 0
    assert clock.advance() == 200
    assert clock.advance() == 400
    assert clock.now_s == 0.4


def test_ticks_until_rounds_up():
    clock = SimulationClock(tick_ms=200)
    assert clock.ticks_until(1000) == 5
    assert clock.ticks_until(1001) == 6


def test_custom_start():
    clock = SimulationClock(tick_ms=100, start_ms=500)
    assert clock.advance() == 600


def test_invalid_tick():
    with pytest.raises(ValueError):
        SimulationClock(tick_ms=0)
