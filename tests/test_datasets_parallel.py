"""Parallel-build determinism: worker count must never change a dataset.

The acceptance bar for the pipeline refactor: a process-pool build is
*byte-identical* (same serialized JSONL, in the same order) to the
serial build for the same options/seed.
"""

from dataclasses import replace

from repro.datasets.d1 import D1Options, build_d1
from repro.datasets.d2 import D2Options, build_d2
from repro.pipeline import ProcessPoolBackend

TINY_D2 = D2Options(n_volunteers=2, include_dense=False, workers=1)
TINY_D1 = D1Options(
    active_drives=1,
    idle_drives=1,
    drive_duration_s=180.0,
    carriers=("A",),
    scenario="lafayette",
    highway_drives=0,
    workers=1,
)


def _jsonl(store) -> str:
    return "\n".join(record.to_json() for record in store)


def test_build_d2_parallel_parity():
    serial = build_d2(TINY_D2)
    pooled = build_d2(replace(TINY_D2, workers=4))
    assert pooled.n_sessions == serial.n_sessions
    assert pooled.n_logs_bytes == serial.n_logs_bytes
    assert _jsonl(pooled.store) == _jsonl(serial.store)


def test_build_d2_explicit_backend_overrides_workers():
    serial = build_d2(TINY_D2)
    pooled = build_d2(TINY_D2, backend=ProcessPoolBackend(workers=2, chunk_size=1))
    assert _jsonl(pooled.store) == _jsonl(serial.store)


def test_build_d1_parallel_parity():
    serial = build_d1(TINY_D1)
    pooled = build_d1(replace(TINY_D1, workers=4))
    assert len(pooled.drives) == len(serial.drives)
    assert [d.carrier for d in pooled.drives] == [d.carrier for d in serial.drives]
    assert [d.diag_log for d in pooled.drives] == [d.diag_log for d in serial.drives]
    assert _jsonl(pooled.store) == _jsonl(serial.store)


def test_save_files_identical_across_worker_counts(tmp_path):
    """The end-to-end acceptance check: identical JSONL files on disk."""
    serial_path = tmp_path / "serial.jsonl"
    pooled_path = tmp_path / "pooled.jsonl"
    build_d2(TINY_D2).store.save(serial_path)
    build_d2(replace(TINY_D2, workers=2)).store.save(pooled_path)
    assert serial_path.read_bytes() == pooled_path.read_bytes()
