"""Tests for the radio propagation model."""

import numpy as np
import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.radio import RadioModel, ShadowingField
from repro.cellnet.rat import RAT


def _cell(gci=1, channel=850, x=0.0, y=0.0, tx=30.0):
    return Cell(
        cell_id=CellId("A", gci), rat=RAT.LTE, channel=channel, pci=1,
        location=Point(x, y), tx_power_dbm=tx,
    )


@pytest.fixture
def model():
    return RadioModel(seed=3)


def test_path_loss_increases_with_distance(model):
    cell = _cell()
    near = model.path_loss_db(cell, Point(100.0, 0.0))
    far = model.path_loss_db(cell, Point(1000.0, 0.0))
    assert far > near


def test_path_loss_increases_with_frequency(model):
    low_band = _cell(channel=5110)   # 700 MHz
    high_band = _cell(channel=9820)  # 2300 MHz
    p = Point(500.0, 0.0)
    assert model.path_loss_db(high_band, p) > model.path_loss_db(low_band, p)


def test_rsrp_clamped_to_reportable_range(model):
    cell = _cell(tx=30.0)
    very_far = Point(50_000.0, 0.0)
    assert model.rsrp_dbm(cell, very_far) == -140.0


def test_rsrp_deterministic(model):
    cell = _cell()
    p = Point(321.0, 123.0)
    assert model.rsrp_dbm(cell, p) == model.rsrp_dbm(cell, p)


def test_rsrp_many_matches_scalar(model):
    cells = [_cell(gci=i, x=i * 400.0) for i in range(1, 6)]
    p = Point(50.0, 80.0)
    vector = model.rsrp_many(cells, p)
    scalar = [model.rsrp_dbm(c, p) for c in cells]
    assert np.allclose(vector, scalar)


def test_shadowing_zero_sigma():
    field = ShadowingField(seed=1, sigma_db=0.0)
    assert field.sample_db(_cell(), Point(10, 10)) == 0.0


def test_shadowing_statistics():
    """Realized field should have roughly the configured variance."""
    field = ShadowingField(seed=5, sigma_db=6.0, decorrelation_m=60.0)
    cell = _cell()
    rng = np.random.default_rng(0)
    samples = [
        field.sample_db(cell, Point(float(x), float(y)))
        for x, y in rng.uniform(0, 50_000, size=(4000, 2))
    ]
    std = float(np.std(samples))
    assert 4.0 < std < 8.0
    assert abs(float(np.mean(samples))) < 1.0


def test_shadowing_spatial_correlation():
    """Nearby points see similar shadowing; distant points do not."""
    field = ShadowingField(seed=5, sigma_db=6.0, decorrelation_m=100.0)
    cell = _cell()
    a = field.sample_db(cell, Point(1000.0, 1000.0))
    near = field.sample_db(cell, Point(1005.0, 1000.0))
    assert abs(a - near) < 1.5


def test_shadowing_differs_between_cells():
    field = ShadowingField(seed=5, sigma_db=6.0)
    p = Point(100.0, 100.0)
    assert field.sample_db(_cell(gci=1), p) != field.sample_db(_cell(gci=2), p)


def test_measure_interference_lowers_sinr(model):
    serving = _cell(gci=1, x=0.0)
    interferer = _cell(gci=2, x=800.0)
    p = Point(200.0, 0.0)
    clean = model.measure(serving, p, co_channel=[])
    dirty = model.measure(serving, p, co_channel=[interferer])
    assert dirty.sinr_db < clean.sinr_db
    assert dirty.rsrq_db <= clean.rsrq_db
    assert dirty.rsrp_dbm == clean.rsrp_dbm


def test_interference_free_rsrq_near_ceiling(model):
    m = model.measure(_cell(), Point(100.0, 0.0), co_channel=[])
    assert -11.5 < m.rsrq_db <= -3.0


def test_measurement_metric_access(model):
    m = model.measure(_cell(), Point(100.0, 0.0))
    assert m.metric("rsrp") == m.rsrp_dbm
    assert m.metric("rsrq") == m.rsrq_db
    with pytest.raises(ValueError):
        m.metric("sinr")


def test_invalid_shadowing_params():
    with pytest.raises(ValueError):
        ShadowingField(seed=1, sigma_db=-1.0)
    with pytest.raises(ValueError):
        ShadowingField(seed=1, decorrelation_m=0.0)
