"""Tests for the diversity metrics (paper Eq. 4/5)."""

import pytest

from repro.core.analysis.diversity import (
    all_parameter_diversity,
    coefficient_of_variation,
    dependence,
    diversity_of_values,
    parameter_diversity,
    richness,
    simpson_index,
    value_distribution,
)
from repro.datasets.records import ConfigSample
from repro.datasets.store import ConfigSampleStore


def test_simpson_single_value_is_zero():
    assert simpson_index([4.0] * 100) == 0.0


def test_simpson_two_equal_values():
    assert simpson_index([1, 2]) == pytest.approx(0.5)


def test_simpson_uniform_many_values():
    assert simpson_index(list(range(10))) == pytest.approx(0.9)


def test_simpson_skew_reduces_diversity():
    balanced = simpson_index([1] * 50 + [2] * 50)
    skewed = simpson_index([1] * 95 + [2] * 5)
    assert skewed < balanced


def test_simpson_empty():
    assert simpson_index([]) == 0.0


def test_cv_basics():
    assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
    assert coefficient_of_variation([1.0]) == 0.0
    assert coefficient_of_variation([]) == 0.0
    assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)


def test_cv_zero_mean_defined():
    assert coefficient_of_variation([-1.0, 1.0]) == 0.0


def test_cv_ignores_non_numeric():
    assert coefficient_of_variation([1.0, 3.0, "x", [1, 2]]) == pytest.approx(0.5)


def test_richness():
    assert richness([1, 1, 2, 3]) == 3
    assert richness([]) == 0


def _store(values, parameter="q_hyst", per_cell=True):
    samples = []
    for i, value in enumerate(values):
        samples.append(ConfigSample(
            carrier="A", gci=i if per_cell else 0, rat="LTE", channel=850,
            city="X", parameter=parameter, value=value,
        ))
    return ConfigSampleStore(samples)


def test_parameter_diversity_over_store():
    store = _store([4.0, 4.0, 2.0, 6.0])
    measures = parameter_diversity(store, "q_hyst")
    assert measures.richness == 3
    assert measures.n_samples == 4
    assert 0 < measures.simpson < 1


def test_dedup_convention():
    """Repeated identical samples from one cell count once."""
    samples = [
        ConfigSample(carrier="A", gci=1, rat="LTE", channel=850, city="X",
                     parameter="q_hyst", value=4.0, observed_day=float(d))
        for d in range(10)
    ] + [
        ConfigSample(carrier="A", gci=2, rat="LTE", channel=850, city="X",
                     parameter="q_hyst", value=2.0)
    ]
    store = ConfigSampleStore(samples)
    deduped = parameter_diversity(store, "q_hyst")
    raw = parameter_diversity(store, "q_hyst", deduplicate_cells=False)
    assert deduped.n_samples == 2
    assert raw.n_samples == 11
    assert deduped.simpson > raw.simpson  # the paper's tipping effect


def test_value_distribution_sorted_and_normalized():
    store = _store([4.0, 4.0, 2.0, 6.0])
    distribution = value_distribution(store, "q_hyst")
    values = [v for v, _ in distribution]
    shares = [s for _, s in distribution]
    assert values == [2.0, 4.0, 6.0]
    assert sum(shares) == pytest.approx(1.0)
    assert dict(distribution)[4.0] == pytest.approx(0.5)


def test_all_parameter_diversity_sorted_by_simpson():
    samples = (
        list(_store([4.0] * 5, parameter="q_hyst"))
        + list(_store([1.0, 2.0, 3.0, 4.0, 5.0], parameter="a3_offset"))
    )
    store = ConfigSampleStore(samples)
    measures = all_parameter_diversity(store)
    assert [m.parameter for m in measures] == ["q_hyst", "a3_offset"]


def test_dependence_zero_when_factor_uninformative():
    """Identical conditional distributions give zeta ~ 0."""
    samples = []
    for channel in (850, 1975):
        for gci in range(20):
            samples.append(ConfigSample(
                carrier="A", gci=gci + channel, rat="LTE", channel=channel,
                city="X", parameter="p", value=float(gci % 2),
            ))
    store = ConfigSampleStore(samples)
    zeta = dependence(store, "p", factor=lambda s: s.channel)
    assert zeta < 0.02


def test_dependence_high_when_factor_determines_value():
    """Per-channel single values but overall diversity: high zeta."""
    samples = []
    for channel, value in ((850, 1.0), (1975, 2.0), (5110, 3.0)):
        for gci in range(20):
            samples.append(ConfigSample(
                carrier="A", gci=gci + channel, rat="LTE", channel=channel,
                city="X", parameter="p", value=value,
            ))
    store = ConfigSampleStore(samples)
    zeta = dependence(store, "p", factor=lambda s: s.channel)
    assert zeta > 0.5


def test_diversity_of_values_dataclass():
    measures = diversity_of_values("x", [1.0, 2.0, 2.0])
    assert measures.parameter == "x"
    assert measures.richness == 2
