"""Tests for the Fig. 7 controlled-experiment machinery."""

import numpy as np
import pytest

from repro.experiments.fig07_throughput_timeline import (
    FixedA3ConfigServer,
    min_throughput_before,
    timeline_around_first_handoff,
)
from repro.simulate.runner import DriveResult, DriveSimulator, TickSample
from repro.simulate.traffic import Speedtest
from repro.ue.device import HandoffEvent
from repro.cellnet.cell import CellId


def test_fixed_a3_server_overrides_offset(scenario, lte_cell):
    server = FixedA3ConfigServer(scenario.env, offset_db=12.0)
    meas = server.connection_reconfiguration(lte_cell).meas_config
    assert len(meas.events) == 1
    assert meas.events[0].offset == 12.0
    assert meas.s_measure == -44.0


def _result_with_handoff(t_handoff=10_000):
    result = DriveResult(carrier="A", tick_ms=1000)
    for t in range(0, 30_000, 1000):
        result.samples.append(TickSample(
            t_ms=t, serving=CellId("A", 1), rsrp_dbm=-100.0, sinr_db=5.0,
            capacity_bps=5e6,
            delivered_bps=1e6 if t < t_handoff else 4e6,
            interrupted=False,
        ))
    result.handoffs = [HandoffEvent(
        time_ms=t_handoff, kind="active", source=CellId("A", 1),
        target=CellId("A", 2), decisive_event="A3",
        old_rsrp_dbm=-110.0, new_rsrp_dbm=-95.0, intra_freq=True,
    )]
    return result


def test_timeline_is_centered_on_handoff():
    result = _result_with_handoff()
    timeline = timeline_around_first_handoff(result, window_s=5.0)
    offsets = [offset for offset, _ in timeline]
    assert min(offsets) >= -5.0 and max(offsets) <= 5.0
    before = [mbps for offset, mbps in timeline if offset < 0]
    after = [mbps for offset, mbps in timeline if offset >= 0]
    assert max(before) < min(after)  # throughput jumps at the handoff


def test_timeline_empty_without_handoffs():
    result = DriveResult(carrier="A", tick_ms=1000)
    assert timeline_around_first_handoff(result) == []


def test_min_throughput_before():
    result = _result_with_handoff()
    assert min_throughput_before(result) == pytest.approx(1e6)


def test_larger_offset_defers_handoff(scenario):
    """The Fig. 7 mechanism on the session world."""
    trajectory = scenario.urban_trajectory(np.random.default_rng(5), duration_s=300.0)
    counts = {}
    for offset in (3.0, 12.0):
        server = FixedA3ConfigServer(scenario.env, offset_db=offset)
        sim = DriveSimulator(scenario.env, server, "A", seed=9)
        result = sim.run(trajectory, Speedtest(), run_index=int(offset))
        counts[offset] = len([h for h in result.handoffs if h.kind == "active"])
    assert counts[12.0] <= counts[3.0]
