"""Tests for the experiment drivers and registry."""

import pytest

from repro.experiments import registry
from repro.experiments.common import ExperimentResult


def test_registry_covers_every_design_md_experiment():
    expected = (
        {"tab02", "tab04"}
        | {f"fig{n:02d}" for n in range(5, 23)}
        | {"ext-instability", "ext-policies"}
    )
    assert set(registry.EXPERIMENTS) == expected


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        registry.run("fig99")


def test_tab02_runs_without_datasets():
    result = registry.run("tab02")
    assert isinstance(result, ExperimentResult)
    assert len(result.rows) == 67  # header + 66 parameters


def test_result_formatting():
    result = ExperimentResult(exp_id="x", title="T")
    result.add("a", 1.23456, "b")
    result.note("note")
    text = result.formatted()
    assert "== x: T ==" in text
    assert "1.235" in text
    assert "# note" in text


@pytest.mark.parametrize("exp_id", ["fig05", "fig06", "fig08", "fig09", "fig10",
                                    "ext-instability"])
def test_d1_experiments_run_on_tiny_build(exp_id, tiny_d1):
    result = registry.run(exp_id, d1=tiny_d1)
    assert result.exp_id == exp_id
    assert result.rows


@pytest.mark.parametrize(
    "exp_id",
    ["tab04", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
     "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "ext-policies"],
)
def test_d2_experiments_run_on_tiny_build(exp_id, tiny_d2):
    result = registry.run(exp_id, d2=tiny_d2)
    assert result.exp_id == exp_id
    assert result.rows


def test_fig16_sorted_by_simpson(tiny_d2):
    result = registry.run("fig16", d2=tiny_d2)
    simpsons = [row[2] for row in result.rows[1:]]
    assert simpsons == sorted(simpsons)


def test_fig12_totals_consistent(tiny_d2):
    result = registry.run("fig12", d2=tiny_d2)
    total_row = next(r for r in result.rows if r[0] == "TOTAL")
    carrier_rows = [r for r in result.rows[1:] if r[0] != "TOTAL"]
    assert total_row[1] == sum(r[1] for r in carrier_rows)
    assert total_row[2] == sum(r[2] for r in carrier_rows)
