"""Tests for repro.cellnet.rat."""

import pytest

from repro.cellnet.rat import (
    RAT,
    RSRP_RANGE_DBM,
    RSRQ_RANGE_DB,
    clamp_rsrp,
    clamp_rsrq,
)


def test_five_rats_exist():
    assert {r.value for r in RAT} == {"LTE", "UMTS", "GSM", "EVDO", "CDMA1x"}


@pytest.mark.parametrize(
    "rat,generation",
    [(RAT.GSM, 2), (RAT.CDMA1X, 2), (RAT.UMTS, 3), (RAT.EVDO, 3), (RAT.LTE, 4)],
)
def test_generations(rat, generation):
    assert rat.generation == generation


def test_families():
    assert RAT.LTE.family == "3GPP"
    assert RAT.UMTS.family == "3GPP"
    assert RAT.GSM.family == "3GPP"
    assert RAT.EVDO.family == "3GPP2"
    assert RAT.CDMA1X.family == "3GPP2"


def test_generation_ordering():
    assert RAT.GSM < RAT.UMTS < RAT.LTE
    assert not RAT.LTE < RAT.GSM


def test_lte_metrics():
    assert RAT.LTE.measurement_metrics == ("rsrp", "rsrq")


def test_legacy_metrics_single():
    for rat in (RAT.GSM, RAT.EVDO, RAT.CDMA1X):
        assert len(rat.measurement_metrics) == 1


def test_clamp_rsrp_within_range():
    assert clamp_rsrp(-100.0) == -100.0


def test_clamp_rsrp_floor_and_ceiling():
    assert clamp_rsrp(-500.0) == RSRP_RANGE_DBM[0]
    assert clamp_rsrp(0.0) == RSRP_RANGE_DBM[1]


def test_clamp_rsrq_bounds():
    assert clamp_rsrq(-30.0) == RSRQ_RANGE_DB[0]
    assert clamp_rsrq(0.0) == RSRQ_RANGE_DB[1]
    assert clamp_rsrq(-10.5) == -10.5
