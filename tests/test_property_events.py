"""Property-based tests for event semantics and reselection invariants."""

from hypothesis import given, strategies as st

from repro.config.events import EventConfig, EventType, evaluate_entry, evaluate_leave
from repro.core.analysis.diversity import simpson_index

_rsrp = st.floats(min_value=-140.0, max_value=-44.0)
_hys = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0])
_offset = st.sampled_from([-2.0, -1.0, 0.0, 1.0, 3.0, 5.0, 12.0])


@given(serving=_rsrp, neighbor=_rsrp, offset=_offset, hysteresis=_hys)
def test_entry_and_leave_never_both_true(serving, neighbor, offset, hysteresis):
    """An event cannot simultaneously satisfy entry and leave (A3)."""
    config = EventConfig(event=EventType.A3, offset=offset, hysteresis=hysteresis)
    entry = evaluate_entry(config, serving, neighbor)
    leave = evaluate_leave(config, serving, neighbor)
    assert not (entry and leave)


@given(serving=_rsrp, neighbor=_rsrp,
       t1=_rsrp, t2=_rsrp, hysteresis=_hys)
def test_a5_entry_leave_exclusive(serving, neighbor, t1, t2, hysteresis):
    config = EventConfig(event=EventType.A5, threshold1=t1, threshold2=t2,
                         hysteresis=hysteresis)
    assert not (
        evaluate_entry(config, serving, neighbor)
        and evaluate_leave(config, serving, neighbor)
    )


@given(serving=_rsrp, threshold=_rsrp, hysteresis=_hys)
def test_a1_a2_mutually_consistent(serving, threshold, hysteresis):
    """A1 (better than) and A2 (worse than) with the same threshold can
    never both hold at once."""
    a1 = EventConfig(event=EventType.A1, threshold1=threshold, hysteresis=hysteresis)
    a2 = EventConfig(event=EventType.A2, threshold1=threshold, hysteresis=hysteresis)
    assert not (
        evaluate_entry(a1, serving, None) and evaluate_entry(a2, serving, None)
    )


@given(serving=_rsrp, neighbor=_rsrp, offset=_offset)
def test_a3_entry_monotone_in_neighbor(serving, neighbor, offset):
    """A stronger neighbor never un-triggers A3."""
    config = EventConfig(event=EventType.A3, offset=offset, hysteresis=1.0)
    if evaluate_entry(config, serving, neighbor):
        assert evaluate_entry(config, serving, neighbor + 1.0)


@given(serving=_rsrp, neighbor=_rsrp, offset=_offset, boost=st.floats(min_value=0.0, max_value=30.0))
def test_a3_entry_monotone_in_serving(serving, neighbor, offset, boost):
    """A stronger serving cell never newly triggers A3."""
    config = EventConfig(event=EventType.A3, offset=offset, hysteresis=1.0)
    if not evaluate_entry(config, serving, neighbor):
        assert not evaluate_entry(config, serving + boost, neighbor)


@given(values=st.lists(st.sampled_from([1, 2, 3, 4, 5]), max_size=200))
def test_simpson_index_bounds(values):
    index = simpson_index(values)
    assert 0.0 <= index < 1.0


@given(values=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=100))
def test_simpson_invariant_under_duplication(values):
    """Duplicating the whole population leaves Simpson unchanged."""
    assert simpson_index(values) == simpson_index(values * 2)


@given(values=st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=50))
def test_simpson_increases_with_new_unique_value(values):
    """Appending a never-seen value cannot reduce diversity."""
    extended = values + [999]
    assert simpson_index(extended) >= simpson_index(values) - 1e-9
