"""Tests for device-side handoff prediction."""

import numpy as np
import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.lte import MeasurementConfig
from repro.core.analysis.prediction import (
    HandoffPredictor,
    evaluate_predictor,
)
from repro.ue.measurement import FilteredMeasurement


def _cell(gci, rat=RAT.LTE, channel=850):
    return Cell(cell_id=CellId("A", gci), rat=rat, channel=channel, pci=0,
                location=Point(0, 0))


def _fm(cell, rsrp):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=-11.0)


SERVING = _cell(1)
NEIGHBOR = _cell(2)

A3_CONFIG = MeasurementConfig(
    events=(EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                        time_to_trigger_ms=320),),
    s_measure=-44.0,
)


def test_prediction_when_entry_condition_holds():
    predictor = HandoffPredictor(A3_CONFIG)
    predictions = predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -90.0)], [])
    assert predictions
    assert predictions[0].target == NEIGHBOR.cell_id
    assert predictions[0].eta_ms == 320


def test_eta_counts_down():
    predictor = HandoffPredictor(A3_CONFIG)
    predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -90.0)], [])
    predictions = predictor.step(200, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -90.0)], [])
    assert predictions[0].eta_ms == 120


def test_no_prediction_when_condition_fails():
    predictor = HandoffPredictor(A3_CONFIG)
    assert predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -99.0)], []) == []


def test_s_measure_gate_blocks_prediction():
    config = MeasurementConfig(events=A3_CONFIG.events, s_measure=-110.0)
    predictor = HandoffPredictor(config)
    assert predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -80.0)], []) == []


def test_periodic_prediction_needs_strong_neighbor():
    config = MeasurementConfig(events=(), periodic=PeriodicConfig(), s_measure=-44.0)
    predictor = HandoffPredictor(config)
    assert predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -97.0)], []) == []
    predictions = predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -92.0)], [])
    assert predictions and predictions[0].event is EventType.PERIODIC


def test_predictions_sorted_by_eta():
    config = MeasurementConfig(
        events=(
            EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                        time_to_trigger_ms=320),
            EventConfig(event=EventType.A4, threshold1=-95.0, hysteresis=1.0,
                        time_to_trigger_ms=0),
        ),
        s_measure=-44.0,
    )
    predictor = HandoffPredictor(config)
    predictions = predictor.step(0, _fm(SERVING, -100.0), [_fm(NEIGHBOR, -90.0)], [])
    assert [p.eta_ms for p in predictions] == sorted(p.eta_ms for p in predictions)


def test_evaluate_predictor_on_drive(scenario):
    """Prediction should be highly accurate, as the paper argues."""
    rng = np.random.default_rng(17)
    trajectory = scenario.urban_trajectory(rng, duration_s=420.0)
    score = evaluate_predictor(
        scenario.env, scenario.server, "A", trajectory, seed=13
    )
    assert score.n_handoffs > 0
    assert score.recall >= 0.7
    assert score.target_accuracy >= 0.7
    assert score.mean_lead_time_ms >= 0.0
