"""Tests for MMLab's proactive cell scanning."""

import pytest

from repro.cellnet.rat import RAT
from repro.core.collector import MMLabCollector
from repro.core.crawler import ConfigCrawler
from repro.core.scanner import proactive_scan
from repro.ue.device import UserEquipment


@pytest.fixture
def ue(env, server):
    return UserEquipment(env, server, "A", seed=29)


def test_scan_visits_multiple_cells(ue, scenario):
    origin = scenario.cities[0].origin
    visited = proactive_scan(ue, origin)
    assert len(visited) > 3
    assert len({c.cell_id for c in visited}) == len(visited)


def test_scan_covers_multiple_rats(ue, scenario):
    origin = scenario.cities[0].origin
    visited = proactive_scan(ue, origin)
    rats = {c.rat for c in visited}
    assert RAT.LTE in rats
    assert len(rats) >= 2  # at least one legacy layer audible


def test_scan_respects_per_rat_cap(ue, scenario):
    origin = scenario.cities[0].origin
    visited = proactive_scan(ue, origin, max_cells_per_rat=2)
    from collections import Counter

    counts = Counter(c.rat for c in visited)
    assert all(count <= 2 for count in counts.values())


def test_scan_restores_lte_camping(ue, scenario):
    origin = scenario.cities[0].origin
    proactive_scan(ue, origin)
    assert ue.serving is not None
    assert ue.serving.rat is RAT.LTE


def test_scan_configurations_reach_collector(ue, scenario):
    collector = MMLabCollector(mode="type1")
    ue.add_listener(collector)
    origin = scenario.cities[0].origin
    visited = proactive_scan(ue, origin)
    snapshots = ConfigCrawler.crawl(collector.log_bytes())
    crawled = {(s.carrier, s.gci) for s in snapshots}
    for cell in visited:
        assert (cell.carrier, cell.cell_id.gci) in crawled


def test_scan_strongest_first_within_rat(ue, scenario, env):
    origin = scenario.cities[0].origin
    visited = proactive_scan(ue, origin)
    lte = [c for c in visited if c.rat is RAT.LTE]
    snap = env.snapshot(origin, "A")
    rsrps = [snap.rsrp(c) for c in lte]
    assert rsrps == sorted(rsrps, reverse=True)
