"""Tests for the legacy-RAT configuration structures."""

import pytest

from repro.cellnet.rat import RAT
from repro.config.legacy import (
    Cdma1xCellConfig,
    EvdoCellConfig,
    GsmCellConfig,
    LEGACY_CONFIG_TYPES,
    UmtsCellConfig,
    validate_legacy,
)
from repro.config.parameters import parameter_count


@pytest.mark.parametrize(
    "config_type,rat",
    [
        (UmtsCellConfig, RAT.UMTS),
        (GsmCellConfig, RAT.GSM),
        (EvdoCellConfig, RAT.EVDO),
        (Cdma1xCellConfig, RAT.CDMA1X),
    ],
)
def test_sample_count_matches_registry(config_type, rat):
    """Each legacy config yields exactly its RAT's parameter count."""
    config = config_type()
    assert len(config.parameter_samples()) == parameter_count(rat)


@pytest.mark.parametrize(
    "config_type,rat",
    [
        (UmtsCellConfig, RAT.UMTS),
        (GsmCellConfig, RAT.GSM),
        (EvdoCellConfig, RAT.EVDO),
        (Cdma1xCellConfig, RAT.CDMA1X),
    ],
)
def test_defaults_validate(config_type, rat):
    assert validate_legacy(config_type(), rat) == []


def test_validate_flags_bad_value():
    config = UmtsCellConfig(t_reselection_s=99)
    problems = validate_legacy(config, RAT.UMTS)
    assert any("t_reselection_s" in p for p in problems)


def test_legacy_config_types_mapping():
    assert LEGACY_CONFIG_TYPES[RAT.UMTS] is UmtsCellConfig
    assert LEGACY_CONFIG_TYPES[RAT.CDMA1X] is Cdma1xCellConfig
    assert RAT.LTE not in LEGACY_CONFIG_TYPES


def test_tuple_fields_flattened_to_lists():
    config = UmtsCellConfig(inter_freq_carrier_list=(10562, 10587))
    samples = dict(config.parameter_samples())
    assert samples["inter_freq_carrier_list"] == [10562, 10587]


def test_cdma1x_pilot_thresholds():
    config = Cdma1xCellConfig()
    samples = dict(config.parameter_samples())
    assert set(samples) == {"t_add", "t_drop", "t_comp", "t_tdrop"}
    assert samples["t_add"] > samples["t_drop"]
