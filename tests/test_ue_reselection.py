"""Tests for idle-mode reselection (paper Eq. 1 and Eq. 3)."""

import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatUtraConfig,
    LteCellConfig,
    ServingCellConfig,
)
from repro.ue.measurement import FilteredMeasurement
from repro.ue.reselection import ReselectionEngine, measurement_gates, rank_candidates


def _cell(gci, rat=RAT.LTE, channel=850):
    return Cell(cell_id=CellId("A", gci), rat=rat, channel=channel, pci=0,
                location=Point(0, 0))


def _fm(cell, rsrp):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=-11.0)


SERVING_CELL = _cell(1, channel=850)

CONFIG = LteCellConfig(
    serving=ServingCellConfig(
        q_hyst=4.0,
        s_intra_search_p=62.0,
        s_non_intra_search_p=8.0,
        thresh_serving_low_p=6.0,
        cell_reselection_priority=4,
        q_rx_lev_min=-122.0,
        t_reselection_eutra=1,
    ),
    inter_freq_layers=(
        InterFreqLayerConfig(dl_carrier_freq=9820, cell_reselection_priority=5,
                             thresh_x_high_p=20.0, thresh_x_low_p=10.0),
        InterFreqLayerConfig(dl_carrier_freq=5110, cell_reselection_priority=2,
                             thresh_x_high_p=20.0, thresh_x_low_p=10.0),
        InterFreqLayerConfig(dl_carrier_freq=1975, cell_reselection_priority=4,
                             thresh_x_high_p=20.0, thresh_x_low_p=10.0,
                             q_offset_freq=0.0),
    ),
    utra_layers=(InterRatUtraConfig(carrier_freq=4385, cell_reselection_priority=1,
                                    thresh_x_high=20.0, thresh_x_low=10.0),),
)


# -- Eq. 1 gating -----------------------------------------------------------

def test_gates_follow_s_criteria():
    # Level = rsrp - (-122); intra gate 62 -> always open here.
    intra, non_intra = measurement_gates(CONFIG, -100.0)
    assert intra          # level 22 <= 62
    assert not non_intra  # level 22 > 8
    intra, non_intra = measurement_gates(CONFIG, -115.0)
    assert intra and non_intra  # level 7 <= both


def test_gate_closed_when_serving_very_strong():
    config = LteCellConfig(
        serving=ServingCellConfig(s_intra_search_p=10.0, q_rx_lev_min=-122.0)
    )
    intra, _ = measurement_gates(config, -100.0)
    assert not intra  # level 22 > 10


# -- Eq. 3 ranking -----------------------------------------------------------

def test_equal_priority_needs_q_hyst_margin():
    same = _cell(2, channel=850)
    assert rank_candidates(CONFIG, _fm(SERVING_CELL, -100.0), [_fm(same, -97.0)]) == []
    ranked = rank_candidates(CONFIG, _fm(SERVING_CELL, -100.0), [_fm(same, -95.0)])
    assert [r.cell.cell_id.gci for r in ranked] == [2]
    assert ranked[0].priority_class == "equal"


def test_higher_priority_ignores_serving_strength():
    """The Fig. 10 mechanism: a strong serving cell does not protect
    against reselection to a (possibly weaker) higher-priority layer."""
    high = _cell(3, channel=9820)
    ranked = rank_candidates(CONFIG, _fm(SERVING_CELL, -80.0), [_fm(high, -95.0)])
    assert ranked and ranked[0].priority_class == "higher"


def test_higher_priority_needs_thresh_x_high():
    high = _cell(3, channel=9820)
    # Level = rsrp + 122 must exceed 20 -> rsrp > -102.
    assert rank_candidates(CONFIG, _fm(SERVING_CELL, -80.0), [_fm(high, -105.0)]) == []


def test_lower_priority_needs_weak_serving():
    low = _cell(4, channel=5110)
    strong_serving = _fm(SERVING_CELL, -100.0)  # level 22 > thresh 6
    weak_serving = _fm(SERVING_CELL, -117.0)    # level 5 < thresh 6
    candidate = _fm(low, -105.0)                # level 17 > thresh_x_low 10
    assert rank_candidates(CONFIG, strong_serving, [candidate]) == []
    ranked = rank_candidates(CONFIG, weak_serving, [candidate])
    assert ranked and ranked[0].priority_class == "lower"


def test_unknown_layer_ignored():
    stranger = _cell(5, channel=2600)  # not in SIB5
    assert rank_candidates(CONFIG, _fm(SERVING_CELL, -117.0), [_fm(stranger, -80.0)]) == []


def test_inter_rat_lower_priority():
    umts = _cell(6, rat=RAT.UMTS, channel=4385)
    ranked = rank_candidates(CONFIG, _fm(SERVING_CELL, -117.0), [_fm(umts, -100.0)])
    assert ranked and ranked[0].priority_class == "lower"


def test_ranking_order_priority_then_rsrp():
    high = _cell(3, channel=9820)
    equal = _cell(2, channel=850)
    ranked = rank_candidates(
        CONFIG, _fm(SERVING_CELL, -110.0),
        [_fm(equal, -90.0), _fm(high, -95.0)],
    )
    assert [r.priority_class for r in ranked] == ["higher", "equal"]


# -- Treselection ------------------------------------------------------------

def test_treselection_persistence():
    engine = ReselectionEngine()
    serving = _fm(SERVING_CELL, -100.0)
    winner = [_fm(_cell(2, channel=850), -94.0)]
    assert engine.step(0, CONFIG, serving, winner) is None
    assert engine.step(500, CONFIG, serving, winner) is None
    chosen = engine.step(1000, CONFIG, serving, winner)
    assert chosen is not None and chosen.cell.cell_id.gci == 2


def test_treselection_resets_when_candidate_drops():
    engine = ReselectionEngine()
    serving = _fm(SERVING_CELL, -100.0)
    winner = [_fm(_cell(2, channel=850), -94.0)]
    loser = [_fm(_cell(2, channel=850), -99.0)]
    engine.step(0, CONFIG, serving, winner)
    engine.step(500, CONFIG, serving, loser)   # no longer ranked: reset
    assert engine.step(1000, CONFIG, serving, winner) is None
    assert engine.step(2000, CONFIG, serving, winner) is not None


def test_engine_reset():
    engine = ReselectionEngine()
    serving = _fm(SERVING_CELL, -100.0)
    winner = [_fm(_cell(2, channel=850), -94.0)]
    engine.step(0, CONFIG, serving, winner)
    engine.reset()
    assert engine.step(900, CONFIG, serving, winner) is None
