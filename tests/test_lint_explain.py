"""``repro lint --explain`` documentation tests.

The contract: every registered rule — present and future — has an
explanation with a description and a minimal triggering configuration
example, and the CLI renders them.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.lint.explain import (
    explain,
    missing_explanations,
    render_explain,
    render_explanation,
)
from repro.lint.rules import all_rules


def test_every_registered_rule_has_an_explanation():
    assert missing_explanations() == ()


def test_explanation_carries_registry_metadata():
    for registered in all_rules():
        explanation = explain(registered.code)
        assert explanation.code == registered.code
        assert explanation.name == registered.name
        assert explanation.severity == registered.severity
        assert explanation.scope == registered.scope
        assert explanation.summary == registered.summary
        assert explanation.description.strip()
        assert explanation.example.strip()


def test_render_explanation_shows_all_fields():
    text = render_explanation(explain("HC401"))
    assert "HC401" in text
    assert "dead-zone" in text
    assert "[problem, coverage scope]" in text
    assert "minimal triggering configuration:" in text
    assert "threshold1=-126.0" in text


def test_render_explain_defaults_to_every_rule():
    text = render_explain()
    for registered in all_rules():
        assert registered.code in text


def test_unknown_code_raises():
    with pytest.raises(KeyError):
        explain("HC999")


def test_cli_explain_single_rule(capsys):
    assert main(["lint", "--explain", "HC405"]) == 0
    out = capsys.readouterr().out
    assert "HC405 leave-entry-overlap" in out
    assert "minimal triggering configuration:" in out


def test_cli_explain_all_rules(capsys):
    assert main(["lint", "--explain"]) == 0
    out = capsys.readouterr().out
    for registered in all_rules():
        assert registered.code in out


def test_cli_explain_unknown_code(capsys):
    assert main(["lint", "--explain", "HC999"]) == 2
    assert "HC999" in capsys.readouterr().err
