"""Tests for the MMLab collector."""

import pytest

from repro.core.collector import MMLabCollector
from repro.rrc.diag import DiagReader
from repro.rrc.messages import (
    MeasurementReport,
    MobilityControlInfo,
    PhyServingMeas,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
)
from repro.config.lte import MeasurementConfig


def test_type2_logs_everything():
    collector = MMLabCollector(mode="type2")
    collector(0, Sib1(), "down")
    collector(1, PhyServingMeas(), "down")
    collector(2, MeasurementReport(), "up")
    records = DiagReader(collector.log_bytes()).records()
    assert len(records) == 3
    assert collector.messages_logged == 3


def test_type1_keeps_configuration_only():
    collector = MMLabCollector(mode="type1")
    collector(0, Sib1(), "down")
    collector(1, Sib3(), "down")
    collector(2, PhyServingMeas(), "down")       # dropped
    collector(3, MeasurementReport(), "up")      # dropped
    records = DiagReader(collector.log_bytes()).records()
    assert [type(r.message).__name__ for r in records] == ["Sib1", "Sib3"]
    assert collector.messages_seen == 4
    assert collector.messages_logged == 2


def test_type1_keeps_meas_config_drops_handover_command():
    collector = MMLabCollector(mode="type1")
    collector(0, RrcConnectionReconfiguration(meas_config=MeasurementConfig()), "down")
    collector(1, RrcConnectionReconfiguration(mobility=MobilityControlInfo()), "down")
    records = DiagReader(collector.log_bytes()).records()
    assert len(records) == 1
    assert records[0].message.meas_config is not None


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        MMLabCollector(mode="type3")


def test_save_to_file(tmp_path):
    collector = MMLabCollector()
    collector(0, Sib1(carrier="A", gci=1), "down")
    path = tmp_path / "log.diag"
    collector.save(path)
    assert DiagReader.from_file(path).records()[0].message.gci == 1


def test_collector_as_ue_listener(env, server, scenario):
    from repro.ue.device import UserEquipment

    ue = UserEquipment(env, server, "A", seed=3)
    collector = MMLabCollector(mode="type2")
    ue.add_listener(collector)
    ue.initial_camp(scenario.cities[0].origin)
    ue.connect(0)
    records = DiagReader(collector.log_bytes()).records()
    types = {type(r.message).__name__ for r in records}
    assert "Sib1" in types
    assert "RrcConnectionReconfiguration" in types
