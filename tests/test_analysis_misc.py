"""Tests for events/thresholds/temporal/spatial/frequency/rats analyses."""

import pytest

from repro.core.analysis.common import BoxStats, cdf_points, fraction_above
from repro.core.analysis.events import dominant_events, event_mix
from repro.core.analysis.frequency import (
    frequency_dependence,
    multi_valued_cell_fraction,
    priority_breakdown,
)
from repro.core.analysis.rats import rat_breakdown, rat_diversity_boxes
from repro.core.analysis.spatial import city_distributions, spatial_diversity
from repro.core.analysis.temporal import (
    multi_sample_cell_fraction,
    samples_per_cell_histogram,
    temporal_dynamics,
)
from repro.core.analysis.thresholds import threshold_gaps
from repro.datasets.records import ConfigSample, HandoffInstance
from repro.datasets.store import ConfigSampleStore, HandoffInstanceStore


# -- common -------------------------------------------------------------------

def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0, 5.0])
    values = [v for v, _ in points]
    fractions = [f for _, f in points]
    assert values == sorted(values)
    assert fractions[0] == 0.0 and fractions[-1] == 1.0


def test_cdf_points_empty():
    assert cdf_points([]) == []


def test_fraction_above():
    assert fraction_above([1.0, -1.0, 2.0], 0.0) == pytest.approx(2 / 3)
    assert fraction_above([], 0.0) == 0.0


def test_box_stats():
    box = BoxStats.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
    assert box.median == 3.0
    assert box.minimum == 1.0 and box.maximum == 5.0
    assert box.n == 5
    empty = BoxStats.from_values([])
    assert empty.n == 0


# -- events -------------------------------------------------------------------

def _active_instance(event, carrier="A", config=None, metric="rsrp"):
    return HandoffInstance(
        kind="active", carrier=carrier, time_ms=0, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850, intra_freq=True,
        decisive_event=event, decisive_metric=metric,
        decisive_config=config or {},
    )


def test_event_mix_shares():
    store = HandoffInstanceStore(
        [_active_instance("A3", config={"offset": 3.0, "hysteresis": 1.0})] * 3
        + [_active_instance("A5", config={"threshold1": -44.0, "threshold2": -114.0})]
    )
    report = event_mix(store, "A")
    assert report.share("A3") == 0.75
    assert report.share("A5") == 0.25
    assert report.share("A1") == 0.0
    assert report.a3_offset_range == (3.0, 3.0)
    assert report.a5_threshold_ranges["rsrp"] == ((-44.0, -44.0), (-114.0, -114.0))
    assert dominant_events(report) == ["A3", "A5"]


def test_event_mix_empty_carrier():
    report = event_mix(HandoffInstanceStore(), "A")
    assert report.n_instances == 0
    assert report.shares == {}


# -- thresholds ---------------------------------------------------------------

def _threshold_samples(gci, intra, nonintra, low, carrier="A"):
    base = dict(carrier=carrier, gci=gci, rat="LTE", channel=850, city="X")
    return [
        ConfigSample(parameter="s_intra_search_p", value=intra, **base),
        ConfigSample(parameter="s_non_intra_search_p", value=nonintra, **base),
        ConfigSample(parameter="thresh_serving_low_p", value=low, **base),
    ]


def test_threshold_gaps():
    samples = (
        _threshold_samples(1, 62.0, 28.0, 6.0)
        + _threshold_samples(2, 62.0, 62.0, 4.0)   # tie
        + _threshold_samples(3, 46.0, 8.0, 10.0)
    )
    report = threshold_gaps(ConfigSampleStore(samples))
    assert len(report.intra_minus_nonintra) == 3
    assert report.tie_fraction == pytest.approx(1 / 3)
    assert report.violation_fraction == 0.0
    assert report.premature_fraction(30.0) == pytest.approx(1.0)
    assert report.late_nonintra_fraction == pytest.approx(1 / 3)


def test_threshold_gaps_carrier_filter():
    samples = _threshold_samples(1, 62.0, 28.0, 6.0, carrier="T")
    report = threshold_gaps(ConfigSampleStore(samples), carriers=("A",))
    assert report.intra_minus_nonintra == []


# -- temporal -----------------------------------------------------------------

def _priority_sample(gci, value, day, round_index=0, parameter="cell_reselection_priority"):
    return ConfigSample(
        carrier="A", gci=gci, rat="LTE", channel=850, city="X",
        parameter=parameter, value=value, observed_day=day,
        round_index=round_index,
    )


def test_samples_per_cell_histogram():
    store = ConfigSampleStore([
        _priority_sample(1, 3, 0.0), _priority_sample(1, 3, 10.0),
        _priority_sample(2, 3, 0.0),
    ])
    histogram = samples_per_cell_histogram(store)
    assert histogram[1] == 0.5 and histogram[2] == 0.5
    assert multi_sample_cell_fraction(store) == 0.5


def test_temporal_dynamics_detects_idle_change():
    store = ConfigSampleStore([
        _priority_sample(1, 3, 0.0, 0),
        _priority_sample(1, 4, 100.0, 1),   # changed after 100 days
        _priority_sample(2, 3, 0.0, 0),
        _priority_sample(2, 3, 100.0, 1),   # unchanged
    ])
    dynamics = temporal_dynamics(store)
    bucket = 180.0
    assert dynamics.idle_changed[bucket] == pytest.approx(0.5)


def test_temporal_dynamics_active_class():
    store = ConfigSampleStore([
        _priority_sample(1, 3.0, 0.0, 0, parameter="a3_offset"),
        _priority_sample(1, 5.0, 0.5, 1, parameter="a3_offset"),
    ])
    dynamics = temporal_dynamics(store)
    assert dynamics.active_changed[1.0] == pytest.approx(1.0)
    assert all(v == 0.0 for v in dynamics.idle_changed.values())


# -- spatial ------------------------------------------------------------------

def test_city_distributions():
    store = ConfigSampleStore([
        _priority_sample(1, 3, 0.0),
        _priority_sample(2, 4, 0.0),
    ])
    table = city_distributions(store, "cell_reselection_priority", ("A",), ("X", "Y"))
    assert table["A"]["X"][3] == 0.5
    assert table["A"]["Y"] == {}


def test_spatial_diversity_empty_is_safe(tiny_d2):
    report = spatial_diversity(
        tiny_d2.store, tiny_d2.env, "A", "NoSuchCity"
    )
    assert report.boxes[0.5].n == 0


def test_spatial_diversity_runs_on_dense_city(tiny_d2):
    report = spatial_diversity(
        tiny_d2.store, tiny_d2.env, "A", "Indianapolis", radii_km=(0.5, 2.0)
    )
    assert set(report.boxes) == {0.5, 2.0}


# -- frequency ----------------------------------------------------------------

def _channel_priority(gci, channel, value):
    return ConfigSample(
        carrier="A", gci=gci, rat="LTE", channel=channel, city="X",
        parameter="cell_reselection_priority", value=value,
    )


def test_priority_breakdown_serving():
    store = ConfigSampleStore([
        _channel_priority(1, 850, 3), _channel_priority(2, 850, 3),
        _channel_priority(3, 9820, 5), _channel_priority(4, 9820, 4),
    ])
    report = priority_breakdown(store, "A")
    assert report.serving[850] == {3: 1.0}
    assert report.multi_valued_channels("serving") == [9820]
    assert report.dominant_priority(850) == 3


def test_multi_valued_cell_fraction():
    store = ConfigSampleStore([
        _channel_priority(1, 850, 3), _channel_priority(2, 850, 3),
        _channel_priority(3, 9820, 5), _channel_priority(4, 9820, 4),
    ])
    # One of four cells carries a non-dominant value for its channel.
    assert multi_valued_cell_fraction(store, "A") == pytest.approx(0.25)


def test_frequency_dependence_per_parameter():
    samples = [
        _channel_priority(1, 850, 3), _channel_priority(2, 850, 3),
        _channel_priority(3, 9820, 5), _channel_priority(4, 9820, 5),
    ]
    store = ConfigSampleStore(samples)
    zetas = frequency_dependence(store, "A")
    assert zetas["cell_reselection_priority"] > 0.3


# -- rats ---------------------------------------------------------------------

def test_rat_breakdown_counts():
    store = ConfigSampleStore([
        _priority_sample(1, 3, 0.0),
        ConfigSample(carrier="A", gci=2, rat="UMTS", channel=4385, city="X",
                     parameter="q_rxlevmin", value=-115.0),
    ])
    report = rat_breakdown(store)
    assert report.parameter_counts["LTE"] == 66
    assert report.parameter_counts["UMTS"] == 64
    assert report.cell_shares["LTE"] == 0.5
    assert report.total_cells == 2


def test_rat_diversity_boxes(tiny_d2):
    boxes = rat_diversity_boxes(tiny_d2.store)
    assert "A-LTE" in boxes
    assert boxes["A-LTE"].n > 0
