"""Shared fixtures: one small world and tiny dataset builds per session.

The simulation-backed fixtures are deliberately small (Lafayette, few
drives/volunteers): unit tests check mechanisms, not statistics; the
statistical shape checks live in the integration tests and use slightly
larger builds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellnet.world import RadioEnvironment
from repro.datasets.d1 import D1Options, build_d1
from repro.datasets.d2 import D2Options, build_d2
from repro.rrc.broadcast import ConfigServer
from repro.simulate.scenarios import drive_scenario


@pytest.fixture(scope="session")
def scenario():
    """A small Type-II world (Lafayette: fewest cells of the paper's cities)."""
    return drive_scenario("lafayette", seed=7, config_seed=2018)


@pytest.fixture(scope="session")
def env(scenario) -> RadioEnvironment:
    return scenario.env


@pytest.fixture(scope="session")
def server(scenario) -> ConfigServer:
    return scenario.server


@pytest.fixture(scope="session")
def lte_cell(scenario):
    """One AT&T LTE cell of the session world."""
    from repro.cellnet.rat import RAT

    return next(c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.LTE)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_d1():
    """A small D1 build shared by dataset/analysis tests."""
    return build_d1(
        D1Options(
            active_drives=2,
            idle_drives=2,
            drive_duration_s=360.0,
            carriers=("A", "T"),
            scenario="lafayette",
            highway_drives=0,
        )
    )


@pytest.fixture(scope="session")
def tiny_d2():
    """A small D2 build shared by dataset/analysis tests."""
    return build_d2(D2Options(n_volunteers=5, include_dense=True))
