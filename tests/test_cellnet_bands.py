"""Tests for the EARFCN/band catalog."""

import pytest

from repro.cellnet.bands import (
    BAND_CATALOG,
    channels_in_band,
    earfcn_to_band,
    earfcn_to_frequency_mhz,
)
from repro.cellnet.rat import RAT


def test_band_30_contains_channel_9820():
    """The paper's AT&T WCS channel (Fig. 18 / Section 5.4.1)."""
    band = earfcn_to_band(9820)
    assert band.number == 30
    assert "WCS" in band.name


def test_channel_9820_frequency():
    # TS 36.101: band 30 DL low = 2350 MHz at N_offs 9770.
    assert earfcn_to_frequency_mhz(9820) == pytest.approx(2355.0)


def test_band_12_and_17_are_700mhz():
    for channel in (5110, 5145):
        assert earfcn_to_band(channel).number == 12
    assert earfcn_to_band(5780).number == 17
    assert earfcn_to_frequency_mhz(5780) < 800.0


def test_unknown_channel_raises():
    with pytest.raises(ValueError, match="no LTE band"):
        earfcn_to_band(999_999)


def test_band_ranges_do_not_overlap_within_rat():
    for rat, bands in BAND_CATALOG.items():
        spans = sorted((b.n_offset_dl, b.n_last_dl) for b in bands)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2, f"{rat} bands overlap: {(s1, e1)} vs {(s2, e2)}"


def test_frequency_monotonic_within_band():
    band = earfcn_to_band(1975)  # AWS-1
    low = band.channel_to_frequency_mhz(band.n_offset_dl)
    high = band.channel_to_frequency_mhz(band.n_last_dl)
    assert high == pytest.approx(low + 0.1 * (band.n_last_dl - band.n_offset_dl))


def test_channel_outside_band_raises():
    band = earfcn_to_band(850)
    with pytest.raises(ValueError, match="outside band"):
        band.channel_to_frequency_mhz(band.n_last_dl + 1)


def test_channels_in_band():
    channels = channels_in_band(30)
    assert 9820 in channels
    assert channels.start == 9770


def test_channels_in_unknown_band_raises():
    with pytest.raises(ValueError, match="unknown LTE band"):
        channels_in_band(99)


def test_umts_and_gsm_catalogs_resolve():
    assert earfcn_to_band(4385, RAT.UMTS).number == 5
    assert earfcn_to_band(128, RAT.GSM).number == 5


def test_all_carrier_channels_resolve():
    """Every channel a carrier holds must be in the catalog."""
    from repro.cellnet.carrier import CARRIERS

    for carrier in CARRIERS.values():
        for rat in RAT:
            for channel in carrier.channels_for(rat):
                earfcn_to_band(channel, rat)  # must not raise
