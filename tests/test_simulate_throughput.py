"""Tests for the throughput model."""

import numpy as np
import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.simulate.throughput import ThroughputModel


@pytest.fixture
def model():
    return ThroughputModel(rng=np.random.default_rng(2))


@pytest.fixture
def cell():
    return Cell(cell_id=CellId("A", 1), rat=RAT.LTE, channel=850, pci=0,
                location=Point(0, 0), bandwidth_mhz=10.0)


def test_capacity_monotone_in_sinr(model, cell):
    low = model.capacity_bps(cell, 0.0, 0)
    high = model.capacity_bps(cell, 20.0, 0)
    assert high > low > 0


def test_capacity_zero_below_floor(model, cell):
    assert model.capacity_bps(cell, -10.0, 0) == 0.0


def test_capacity_scales_with_bandwidth(model):
    narrow = Cell(cell_id=CellId("A", 1), rat=RAT.LTE, channel=850, pci=0,
                  location=Point(0, 0), bandwidth_mhz=5.0)
    wide = Cell(cell_id=CellId("A", 1), rat=RAT.LTE, channel=850, pci=0,
                location=Point(0, 0), bandwidth_mhz=20.0)
    assert model.capacity_bps(wide, 15.0, 0) > model.capacity_bps(narrow, 15.0, 0)


def test_capacity_capped_at_spectral_efficiency_limit(model, cell):
    very_high = model.capacity_bps(cell, 60.0, 0)
    # 4.4 b/s/Hz * 9 MHz usable * load share <= ~39.6 Mbps.
    assert very_high <= 4.4 * 9e6


def test_load_share_stable_within_epoch(model, cell):
    a = model.capacity_bps(cell, 10.0, 1000)
    b = model.capacity_bps(cell, 10.0, 2000)  # same 4 s epoch
    assert a == b


def test_load_share_varies_across_epochs(model, cell):
    values = {model.capacity_bps(cell, 10.0, epoch * 4000) for epoch in range(10)}
    assert len(values) > 1


def test_rtt_grows_when_sinr_poor(model):
    good = np.mean([model.rtt_ms(15.0) for _ in range(50)])
    bad = np.mean([model.rtt_ms(-5.0) for _ in range(50)])
    assert bad > good + 20.0


def test_ping_lost_during_interruption(model):
    assert model.ping_lost(20.0, interrupted=True)
    assert model.ping_lost(-20.0, interrupted=False)
