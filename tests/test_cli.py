"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import registry


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == registry.all_experiment_ids()


def test_run_dataset_free_experiment(capsys):
    assert main(["run", "tab02"]) == 0
    out = capsys.readouterr().out
    assert "tab02" in out
    assert "q_hyst" in out


def test_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_build_d2_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "d2.jsonl"
    assert main([
        "build-d2", "--volunteers", "2", "--no-dense",
        "--workers", "2", "--out", str(out),
    ]) == 0
    err = capsys.readouterr().err
    assert "workers=2" in err
    from repro.datasets.store import ConfigSampleStore

    assert len(ConfigSampleStore.load(out)) > 0


def test_build_d1_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "d1.jsonl"
    assert main([
        "build-d1", "--scenario", "lafayette", "--carriers", "A",
        "--active-drives", "1", "--idle-drives", "1", "--duration", "120",
        "--highway-drives", "0", "--out", str(out),
    ]) == 0
    err = capsys.readouterr().err
    assert "D1:" in err
    from repro.datasets.store import HandoffInstanceStore

    HandoffInstanceStore.load(out)  # must parse back
