"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import registry


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == registry.all_experiment_ids()


def test_run_dataset_free_experiment(capsys):
    assert main(["run", "tab02"]) == 0
    out = capsys.readouterr().out
    assert "tab02" in out
    assert "q_hyst" in out


def test_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
