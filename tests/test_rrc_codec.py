"""Tests for the binary message codec."""

import pytest

from repro.rrc.codec import CodecError, decode_message, encode_message
from repro.rrc.messages import MeasResult, MeasurementReport, Sib1


def test_roundtrip_simple_message():
    sib1 = Sib1(carrier="A", gci=42, pci=17, channel=850, rat="LTE",
                q_rx_lev_min=-122.0, city="Chicago")
    decoded = decode_message(encode_message(sib1))
    assert decoded == sib1


def test_roundtrip_nested_message():
    report = MeasurementReport(
        event="A3",
        metric="rsrp",
        serving=MeasResult(carrier="A", gci=1, rsrp_dbm=-101.5),
        neighbors=(
            MeasResult(carrier="A", gci=2, rsrp_dbm=-96.0),
            MeasResult(carrier="A", gci=3, rsrp_dbm=-99.25),
        ),
    )
    decoded = decode_message(encode_message(report))
    assert decoded.to_payload() == report.to_payload()


def test_unknown_type_code_raises():
    with pytest.raises(CodecError, match="unknown message type"):
        decode_message(bytes([0x7F]) + encode_message(Sib1())[1:])


def test_trailing_bytes_raise():
    buf = encode_message(Sib1()) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode_message(buf)


def test_truncated_buffer_raises():
    buf = encode_message(Sib1(city="Chicago"))
    with pytest.raises(CodecError):
        decode_message(buf[: len(buf) // 2])


def test_unknown_tag_raises():
    with pytest.raises(CodecError, match="unknown tag"):
        decode_message(bytes([0x01, 0xFE]))


def test_empty_buffer_raises():
    with pytest.raises(CodecError):
        decode_message(b"")


def test_negative_integers_roundtrip():
    sib1 = Sib1(gci=5, q_rx_lev_min=-122.0)
    assert decode_message(encode_message(sib1)).q_rx_lev_min == -122.0


def test_unicode_strings_roundtrip():
    sib1 = Sib1(carrier="A", city="Zürich—東京")
    assert decode_message(encode_message(sib1)).city == "Zürich—東京"


def test_encoding_is_deterministic():
    sib1 = Sib1(carrier="A", gci=9, city="LA")
    assert encode_message(sib1) == encode_message(sib1)
