"""Tests for the carrier configuration profiles."""

from collections import Counter

import numpy as np
import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.events import EventType
from repro.config.profiles import (
    CARRIER_STYLES,
    ConfigContext,
    profile_for_carrier,
)
from repro.config.validation import validate_config


def _cell(gci, carrier="A", channel=850, city="Indianapolis", rat=RAT.LTE):
    return Cell(
        cell_id=CellId(carrier, gci), rat=rat, channel=channel, pci=gci % 504,
        location=Point(gci * 37.0, gci * 11.0), city=city,
    )


CTX = ConfigContext(
    city="Indianapolis",
    lte_channels=(850, 1975, 5110, 9820),
    utra_channels=(4385,),
    geran_channels=(128,),
)


def test_profile_cached():
    assert profile_for_carrier("A") is profile_for_carrier("A")
    assert profile_for_carrier("A") is not profile_for_carrier("T")


def test_base_config_deterministic():
    profile = profile_for_carrier("A")
    cell = _cell(5)
    assert profile.lte_config(cell, CTX) == profile.lte_config(cell, CTX)


def test_generated_configs_validate():
    profile = profile_for_carrier("A")
    for gci in range(1, 30):
        config = profile.lte_config(_cell(gci), CTX)
        assert validate_config(config, RAT.LTE) == [], gci


def test_att_event_policy_mix():
    """Fig. 5: AT&T arms A3 on ~2/3 of cells, A5 on ~1/4."""
    profile = profile_for_carrier("A")
    policies = Counter()
    for gci in range(1, 500):
        meas = profile.measurement_config(_cell(gci))
        events = {e.event for e in meas.events}
        if EventType.A3 in events:
            policies["A3"] += 1
        elif EventType.A5 in events:
            policies["A5"] += 1
        elif meas.periodic is not None:
            policies["P"] += 1
        else:
            policies["other"] += 1
    total = sum(policies.values())
    assert 0.55 < policies["A3"] / total < 0.80
    assert 0.15 < policies["A5"] / total < 0.38


def test_att_a3_offsets_in_paper_range():
    """AT&T Delta_A3 in [0, 5] dB, dominated by 3 dB (Fig. 5a)."""
    profile = profile_for_carrier("A")
    offsets = []
    for gci in range(1, 400):
        meas = profile.measurement_config(_cell(gci))
        for event in meas.events:
            if event.event is EventType.A3:
                offsets.append(event.offset)
    assert offsets
    assert min(offsets) >= 0.0
    assert max(offsets) <= 5.0
    assert Counter(offsets).most_common(1)[0][0] == 3.0


def test_tmobile_a3_offsets_wider_and_may_be_negative():
    """T-Mobile Delta_A3 in [-1, 15] dB (Fig. 5b).

    T-Mobile configures per (city, channel), so diversity only appears
    across those keys; the style table itself carries the paper's range.
    """
    profile = profile_for_carrier("T")
    assert min(profile.style.a3_offsets) == -1.0
    assert max(profile.style.a3_offsets) == 15.0
    offsets = set()
    cities = ("Chicago", "LA", "Indianapolis", "Columbus", "Lafayette",
              "Springfield", "Gary", "Peoria", "Aurora", "Naperville")
    for city in cities:
        for channel in (5035, 5110, 66486, 66661, 1950, 675, 2000, 9820):
            meas = profile.measurement_config(
                _cell(1, carrier="T", channel=channel, city=city)
            )
            for event in meas.events:
                if event.event is EventType.A3:
                    offsets.add(event.offset)
    assert len(offsets) >= 4
    assert max(offsets) >= 6.0


def test_sk_telecom_single_valued():
    """SK Telecom: the paper's zero-diversity outlier (Fig. 15/17)."""
    profile = profile_for_carrier("SK")
    configs = {
        profile.lte_config(_cell(gci, carrier="SK", channel=1550, city="Seoul"),
                           ConfigContext(city="Seoul", lte_channels=(1550, 2600)))
        .serving
        for gci in range(1, 40)
    }
    assert len(configs) == 1


def test_grid_mode_carrier_identical_within_city_channel():
    """T-Mobile configures per (city, channel): zero proximity diversity."""
    profile = profile_for_carrier("T")
    ctx = ConfigContext(city="Chicago", lte_channels=(5035, 5110))
    a = profile.lte_config(_cell(1, carrier="T", channel=5035, city="Chicago"), ctx)
    b = profile.lte_config(_cell(999, carrier="T", channel=5035, city="Chicago"), ctx)
    assert a.serving == b.serving


def test_cell_mode_carrier_varies_per_cell():
    profile = profile_for_carrier("A")
    servings = {
        profile.lte_config(_cell(gci), CTX).serving for gci in range(1, 25)
    }
    assert len(servings) > 1


def test_band30_gets_top_priority():
    """Fig. 18: the 2300 MHz WCS channel is the most preferred."""
    profile = profile_for_carrier("A")
    rng = np.random.default_rng(0)
    p30 = profile.priority_for_channel(9820, "Indianapolis", rng)
    p12 = profile.priority_for_channel(5110, "Indianapolis", rng)
    assert p30 >= 4
    assert p12 <= 3


def test_priority_conflicts_are_rare_but_exist():
    profile = profile_for_carrier("A")
    values = set()
    for i in range(400):
        rng = np.random.default_rng(i)
        values.add(profile.priority_for_channel(9820, "Indianapolis", rng))
    assert len(values) == 2  # dominant value plus the rare conflict


def test_chicago_priorities_shifted_on_some_channels():
    """Fig. 20: C1 (Chicago) differs from other cities — via a subset
    of city-sensitive channels."""
    profile = profile_for_carrier("A")
    from repro.cellnet.carrier import carrier_by_acronym

    shifted = 0
    for channel in carrier_by_acronym("A").lte_channels:
        chicago = profile.priority_for_channel(channel, "Chicago",
                                               np.random.default_rng(1))
        indy = profile.priority_for_channel(channel, "Indianapolis",
                                            np.random.default_rng(1))
        if chicago != indy:
            shifted += 1
            assert chicago == indy + 1
    assert shifted > 0  # some channels are market-dependent...
    assert shifted < len(carrier_by_acronym("A").lte_channels)  # ...not all


def test_observed_config_active_churn():
    """Repeated observations sometimes carry a different measConfig."""
    profile = profile_for_carrier("A")
    cell = _cell(77)
    obs_rng = np.random.default_rng(5)
    base = profile.measurement_config(cell)
    seen_different = False
    for _ in range(60):
        observed = profile.measurement_config(cell, obs_rng=obs_rng)
        if observed.events != base.events or observed.periodic != base.periodic:
            seen_different = True
            break
    assert seen_different


def test_observed_idle_config_stable_within_epoch():
    profile = profile_for_carrier("A")
    cell = _cell(42)
    rng = np.random.default_rng(3)
    a = profile.observed_lte_config(cell, CTX, rng, days_since_first=10.0)
    b = profile.observed_lte_config(cell, CTX, rng, days_since_first=60.0)
    assert a.serving == b.serving  # same 90-day epoch


def test_legacy_dispatch():
    profile = profile_for_carrier("A")
    umts = _cell(9, rat=RAT.UMTS, channel=4385)
    gsm = _cell(10, rat=RAT.GSM, channel=128)
    assert profile.legacy_config(umts).__class__.__name__ == "UmtsCellConfig"
    assert profile.legacy_config(gsm).__class__.__name__ == "GsmCellConfig"
    with pytest.raises(ValueError):
        profile.legacy_config(_cell(11))


def test_thresh_x_low_rides_above_serving_low():
    """Paper: Theta(c)_lower > Theta(s)_lower."""
    profile = profile_for_carrier("A")
    for gci in range(1, 40):
        config = profile.lte_config(_cell(gci), CTX)
        for layer in config.inter_freq_layers:
            assert layer.thresh_x_low_p > config.serving.thresh_serving_low_p


def test_styles_exist_for_named_carriers():
    for acronym in ("A", "T", "V", "S", "CM", "SK", "MO", "CH", "CW"):
        assert acronym in CARRIER_STYLES
