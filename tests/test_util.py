"""Tests for shared utilities."""

import subprocess
import sys

from repro.util import stable_hash


def test_stable_hash_deterministic_within_process():
    assert stable_hash("AT&T") == stable_hash("AT&T")
    assert stable_hash("A") != stable_hash("T")


def test_stable_hash_known_value_across_processes():
    """The whole reproducibility story depends on this hash not being
    salted per interpreter process (unlike builtin ``hash``)."""
    expected = stable_hash("Chicago")
    code = "from repro.util import stable_hash; print(stable_hash('Chicago'))"
    output = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    assert int(output.stdout.strip()) == expected


def test_stable_hash_handles_unicode():
    assert isinstance(stable_hash("Zürich—東京"), int)
