"""Property-based tests for the Eq. 3 reselection ranking."""

from hypothesis import given, strategies as st

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.lte import InterFreqLayerConfig, LteCellConfig, ServingCellConfig
from repro.ue.measurement import FilteredMeasurement
from repro.ue.reselection import rank_candidates


def _cell(gci, channel):
    return Cell(cell_id=CellId("A", gci), rat=RAT.LTE, channel=channel, pci=0,
                location=Point(0, 0))


def _fm(cell, rsrp):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=-11.0)


def _config(serving_priority, layer_priority, thresh_high=20.0, thresh_low=10.0,
            serving_low=6.0, q_hyst=4.0):
    return LteCellConfig(
        serving=ServingCellConfig(
            q_hyst=q_hyst, thresh_serving_low_p=serving_low,
            cell_reselection_priority=serving_priority, q_rx_lev_min=-122.0,
        ),
        inter_freq_layers=(
            InterFreqLayerConfig(
                dl_carrier_freq=1975, cell_reselection_priority=layer_priority,
                thresh_x_high_p=thresh_high, thresh_x_low_p=thresh_low,
            ),
        ),
    )


_rsrp = st.floats(min_value=-138.0, max_value=-50.0)
_priority = st.integers(min_value=0, max_value=7)


@given(serving_rsrp=_rsrp, neighbor_rsrp=_rsrp,
       sp=_priority, lp=_priority)
def test_ranked_candidates_have_consistent_class(serving_rsrp, neighbor_rsrp, sp, lp):
    config = _config(sp, lp)
    serving = _fm(_cell(1, 850), serving_rsrp)
    neighbor = _fm(_cell(2, 1975), neighbor_rsrp)
    ranked = rank_candidates(config, serving, [neighbor])
    for candidate in ranked:
        if lp > sp:
            assert candidate.priority_class == "higher"
        elif lp == sp:
            assert candidate.priority_class == "equal"
        else:
            assert candidate.priority_class == "lower"


@given(serving_rsrp=_rsrp, neighbor_rsrp=_rsrp, sp=_priority, lp=_priority)
def test_lower_priority_requires_weak_serving(serving_rsrp, neighbor_rsrp, sp, lp):
    """Eq. 3 rule 3: a lower-priority candidate never wins while the
    serving level is above thresh_serving_low."""
    config = _config(sp, lp, serving_low=6.0)
    serving = _fm(_cell(1, 850), serving_rsrp)
    neighbor = _fm(_cell(2, 1975), neighbor_rsrp)
    ranked = rank_candidates(config, serving, [neighbor])
    serving_level = serving_rsrp - (-122.0)
    if lp < sp and serving_level >= 6.0:
        assert ranked == []


@given(serving_rsrp=_rsrp, neighbor_rsrp=_rsrp, sp=_priority)
def test_equal_priority_winner_is_strictly_stronger(serving_rsrp, neighbor_rsrp, sp):
    """Eq. 3 rule 2 with q_hyst > 0: the chosen equal-priority cell is
    always strictly stronger — the Fig. 10 'equal always improves'."""
    config = _config(sp, sp, q_hyst=4.0)
    serving = _fm(_cell(1, 850), serving_rsrp)
    neighbor = _fm(_cell(2, 1975), neighbor_rsrp)
    for candidate in rank_candidates(config, serving, [neighbor]):
        if candidate.priority_class == "equal":
            assert candidate.measurement.rsrp_dbm > serving.rsrp_dbm


@given(serving_rsrp=_rsrp, rsrps=st.lists(_rsrp, min_size=2, max_size=6))
def test_ranking_order_is_priority_then_strength(serving_rsrp, rsrps):
    config = LteCellConfig(
        serving=ServingCellConfig(cell_reselection_priority=3, q_rx_lev_min=-122.0,
                                  thresh_serving_low_p=62.0),
        inter_freq_layers=(
            InterFreqLayerConfig(dl_carrier_freq=1975, cell_reselection_priority=5,
                                 thresh_x_high_p=0.0, thresh_x_low_p=0.0),
            InterFreqLayerConfig(dl_carrier_freq=5110, cell_reselection_priority=2,
                                 thresh_x_high_p=0.0, thresh_x_low_p=0.0),
        ),
    )
    serving = _fm(_cell(1, 850), serving_rsrp)
    neighbors = [
        _fm(_cell(10 + i, 1975 if i % 2 else 5110), rsrp)
        for i, rsrp in enumerate(rsrps)
    ]
    ranked = rank_candidates(config, serving, neighbors)
    priorities = [r.priority for r in ranked]
    assert priorities == sorted(priorities, reverse=True)
    for a, b in zip(ranked, ranked[1:]):
        if a.priority == b.priority:
            assert a.measurement.rsrp_dbm >= b.measurement.rsrp_dbm
