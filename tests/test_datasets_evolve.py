"""Tests for the synthetic configuration-evolution generator."""

import pytest

from repro.datasets import EvolveOptions, SnapshotTimeline, evolve_timeline
from repro.lint import ConfigSnapshot
from repro.lint.snapshot import SNAPSHOT_VERSION


def test_options_validate():
    with pytest.raises(ValueError, match="unknown scenario"):
        EvolveOptions(scenario="meltdown")
    with pytest.raises(ValueError, match="at least 2"):
        EvolveOptions(steps=1)


def test_timeline_is_deterministic():
    a = evolve_timeline(EvolveOptions(scenario="retune", steps=3))
    b = evolve_timeline(EvolveOptions(scenario="retune", steps=3))
    assert [s.fleet_digest for s in a.snapshots] == \
        [s.fleet_digest for s in b.snapshots]
    assert a.snapshots[0].cells == b.snapshots[0].cells


def test_labels_and_days_follow_the_axis():
    tl = evolve_timeline(EvolveOptions(scenario="clean", steps=3,
                                       interval_days=10.0))
    assert [s.label for s in tl.snapshots] == \
        ["clean-000", "clean-001", "clean-002"]
    assert [s.captured_day for s in tl.snapshots] == [0.0, 10.0, 20.0]


def test_retune_walks_thresholds_monotonically():
    tl = evolve_timeline(EvolveOptions(scenario="retune", steps=3))
    values = [
        snap.cells[0].lte_config.inter_freq_layers[0].thresh_x_high_p
        for snap in tl.snapshots
    ]
    assert values == [12.0, 10.0, 8.0]


def test_loop_regression_changes_only_the_final_capture():
    tl = evolve_timeline(EvolveOptions(scenario="loop-regression", steps=3))
    digests = [s.fleet_digest for s in tl.snapshots]
    assert digests[0] == digests[1]
    assert digests[1] != digests[2]


def test_flapping_alternates_q_hyst():
    tl = evolve_timeline(EvolveOptions(scenario="flapping", steps=4))
    values = [
        snap.cells[0].lte_config.serving.q_hyst for snap in tl.snapshots
    ]
    assert values == [4.0, 6.0, 4.0, 6.0]


def test_save_writes_loadable_numbered_snapshots(tmp_path):
    tl = evolve_timeline(EvolveOptions(scenario="patch-rollout", steps=2))
    assert isinstance(tl, SnapshotTimeline) and len(tl) == 2
    paths = tl.save(tmp_path / "out")
    assert [p.name for p in paths] == ["snapshot-000.json", "snapshot-001.json"]
    loaded = ConfigSnapshot.load(paths[1])
    assert loaded.label == "patch-rollout-001"
    assert loaded.cells == tl.snapshots[1].cells
    assert SNAPSHOT_VERSION == 1
