"""Tests for UMTS soft-handover active-set management."""

import numpy as np
import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.legacy import UmtsCellConfig
from repro.ue.measurement import FilteredMeasurement
from repro.ue.umts_active_set import ActiveSetManager


def _cell(gci, rat=RAT.UMTS):
    return Cell(cell_id=CellId("A", gci), rat=rat, channel=4385, pci=0,
                location=Point(0, 0))


def _fm(cell, rsrp):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=-11.0)


A, B, C, D = (_cell(i) for i in range(1, 5))

CONFIG = UmtsCellConfig(
    e1a_reporting_range=4.0, e1a_hysteresis=1.0, e1a_time_to_trigger=320,
    e1b_reporting_range=6.0, e1b_hysteresis=1.0, e1b_time_to_trigger=320,
    e1c_replacement_threshold=-95.0, e1c_hysteresis=2.0, e1c_time_to_trigger=320,
)


@pytest.fixture
def manager():
    m = ActiveSetManager(config=CONFIG)
    m.start(A)
    return m


def test_start_requires_umts():
    m = ActiveSetManager(config=CONFIG)
    with pytest.raises(ValueError):
        m.start(_cell(9, rat=RAT.LTE))


def test_step_before_start_raises():
    m = ActiveSetManager(config=CONFIG)
    with pytest.raises(RuntimeError):
        m.step(0, {})


def test_1a_adds_cell_in_range(manager):
    measured = {A.cell_id: _fm(A, -90.0), B.cell_id: _fm(B, -92.0)}
    assert manager.step(0, measured) == []           # TTT running
    updates = manager.step(400, measured)
    assert [u.kind for u in updates] == ["add"]
    assert B in manager
    assert manager.size == 2


def test_1a_ignores_cell_out_of_range(manager):
    # Range 4 dB, hysteresis 1 -> needs >= best - 3.5 dB.
    measured = {A.cell_id: _fm(A, -90.0), B.cell_id: _fm(B, -94.0)}
    for t in (0, 400, 800):
        assert manager.step(t, measured) == []
    assert manager.size == 1


def test_1a_flicker_resets_ttt(manager):
    inside = {A.cell_id: _fm(A, -90.0), B.cell_id: _fm(B, -91.0)}
    outside = {A.cell_id: _fm(A, -90.0), B.cell_id: _fm(B, -98.0)}
    manager.step(0, inside)
    manager.step(200, outside)
    manager.step(400, inside)
    assert manager.step(600, inside) == []
    assert manager.step(800, inside) != []


def test_1b_removes_weak_active(manager):
    measured = {A.cell_id: _fm(A, -90.0), B.cell_id: _fm(B, -91.0)}
    manager.step(0, measured)
    manager.step(400, measured)              # B added
    # B collapses below best - (6 + 0.5) dB.
    weak = {A.cell_id: _fm(A, -90.0), B.cell_id: _fm(B, -99.0)}
    manager.step(1000, weak)
    updates = manager.step(1400, weak)
    assert [u.kind for u in updates] == ["remove"]
    assert B not in manager


def test_1b_never_empties_set(manager):
    # Only A active and it is terrible: still kept.
    measured = {A.cell_id: _fm(A, -120.0)}
    for t in (0, 400, 800, 1200):
        assert manager.step(t, measured) == []
    assert manager.size == 1


def test_1c_replaces_worst_when_full(manager):
    measured = {
        A.cell_id: _fm(A, -90.0),
        B.cell_id: _fm(B, -91.0),
        C.cell_id: _fm(C, -92.0),
    }
    manager.step(0, measured)
    manager.step(400, measured)
    assert manager.size == 3                 # full
    # D clearly better than the worst active (C).
    with_d = dict(measured)
    with_d[D.cell_id] = _fm(D, -88.0)
    manager.step(1000, with_d)
    updates = manager.step(1400, with_d)
    replaces = [u for u in updates if u.kind == "replace"]
    assert replaces
    assert replaces[0].cell.cell_id == D.cell_id
    assert replaces[0].removed.cell_id == C.cell_id
    assert manager.size == 3


def test_non_umts_neighbors_ignored(manager):
    lte = _cell(9, rat=RAT.LTE)
    measured = {A.cell_id: _fm(A, -90.0), lte.cell_id: _fm(lte, -80.0)}
    manager.step(0, measured)
    assert manager.step(400, measured) == []
    assert manager.size == 1


def test_missing_active_measurements_is_safe(manager):
    assert manager.step(0, {B.cell_id: _fm(B, -90.0)}) == []


def test_soft_handover_walk(env, scenario):
    """Drive the manager with real measurements across a deployment."""
    from repro.ue.measurement import MeasurementEngine

    umts_cells = [
        c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.UMTS
    ]
    if len(umts_cells) < 2:
        pytest.skip("not enough UMTS cells in the session world")
    engine = MeasurementEngine(env, np.random.default_rng(3))
    start = umts_cells[0]
    manager = ActiveSetManager(config=CONFIG)
    manager.start(start)
    updates = []
    origin = start.location
    target = umts_cells[1].location
    for tick in range(400):
        t = tick * 200
        frac = tick / 400
        location = origin.towards(target, frac)
        measured = engine.step(location, "A", start)
        umts_only = {
            cid: fm for cid, fm in measured.items() if fm.cell.rat is RAT.UMTS
        }
        if umts_only:
            updates.extend(manager.step(t, umts_only))
    assert 1 <= manager.size <= manager.max_size
    kinds = {u.kind for u in updates}
    assert "add" in kinds  # soft handover engaged along the walk
