"""Tests for the configuration verification toolkit."""

import pytest

from repro.config.events import EventConfig, EventType
from repro.config.lte import (
    InterFreqLayerConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.core.analysis.verification import (
    audit_snapshot,
    audit_snapshots,
    detect_priority_conflicts,
    detect_priority_loops,
    summarize,
)
from repro.core.crawler import CellConfigSnapshot


def _snapshot(gci=1, channel=850, serving=None, layers=(), meas=None):
    config = LteCellConfig(
        serving=serving or ServingCellConfig(),
        inter_freq_layers=tuple(layers),
    )
    return CellConfigSnapshot(
        carrier="A", gci=gci, rat="LTE", channel=channel, city="X",
        first_seen_ms=0, lte_config=config, meas_config=meas,
    )


def test_clean_snapshot_minimal_findings():
    snapshot = _snapshot(
        serving=ServingCellConfig(
            s_intra_search_p=30.0, s_non_intra_search_p=8.0,
            thresh_serving_low_p=6.0,
        )
    )
    findings = audit_snapshot(snapshot)
    assert findings == []


def test_negative_a3_offset_flagged():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=-1.0, hysteresis=1.0),
    ))
    findings = audit_snapshot(_snapshot(meas=meas))
    flagged = [f for f in findings if f.code == "HC002"]
    assert flagged and flagged[0].name == "a3-negative-offset"


def test_a5_no_serving_requirement_flagged():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A5, threshold1=-44.0, threshold2=-114.0),
    ))
    findings = audit_snapshot(_snapshot(meas=meas))
    codes = {f.code for f in findings}
    assert "HC003" in codes
    assert "HC004" in codes


def test_premature_measurement_flagged():
    snapshot = _snapshot(
        serving=ServingCellConfig(
            s_intra_search_p=62.0, s_non_intra_search_p=8.0,
            thresh_serving_low_p=6.0,
        )
    )
    findings = audit_snapshot(snapshot)
    assert any(f.code == "HC006" for f in findings)


def test_late_nonintra_flagged():
    snapshot = _snapshot(
        serving=ServingCellConfig(
            s_intra_search_p=20.0, s_non_intra_search_p=2.0,
            thresh_serving_low_p=6.0,
        )
    )
    findings = audit_snapshot(snapshot)
    assert any(f.code == "HC007" for f in findings)


def test_nonintra_above_intra_is_problem():
    snapshot = _snapshot(
        serving=ServingCellConfig(
            s_intra_search_p=8.0, s_non_intra_search_p=20.0,
            thresh_serving_low_p=6.0,
        )
    )
    findings = audit_snapshot(snapshot)
    problem = [f for f in findings if f.code == "HC005"]
    assert problem and problem[0].severity == "problem"


def test_priority_conflict_detection():
    snapshots = [
        _snapshot(gci=1, channel=850,
                  serving=ServingCellConfig(cell_reselection_priority=3)),
        _snapshot(gci=2, channel=850,
                  serving=ServingCellConfig(cell_reselection_priority=4)),
    ]
    findings = detect_priority_conflicts(snapshots)
    assert len(findings) == 1
    assert findings[0].code == "HC101"


def test_priority_loop_detection():
    """Cell on 850 prefers 1975; cell on 1975 prefers 850: a loop."""
    snapshots = [
        _snapshot(
            gci=1, channel=850,
            serving=ServingCellConfig(cell_reselection_priority=3),
            layers=[InterFreqLayerConfig(dl_carrier_freq=1975,
                                         cell_reselection_priority=5)],
        ),
        _snapshot(
            gci=2, channel=1975,
            serving=ServingCellConfig(cell_reselection_priority=3),
            layers=[InterFreqLayerConfig(dl_carrier_freq=850,
                                         cell_reselection_priority=5)],
        ),
    ]
    findings = detect_priority_loops(snapshots)
    assert any(f.code == "HC103" for f in findings)
    assert findings[0].severity == "problem"


def test_no_loop_with_consistent_priorities():
    snapshots = [
        _snapshot(
            gci=1, channel=850,
            serving=ServingCellConfig(cell_reselection_priority=3),
            layers=[InterFreqLayerConfig(dl_carrier_freq=1975,
                                         cell_reselection_priority=5)],
        ),
        _snapshot(
            gci=2, channel=1975,
            serving=ServingCellConfig(cell_reselection_priority=5),
            layers=[InterFreqLayerConfig(dl_carrier_freq=850,
                                         cell_reselection_priority=3)],
        ),
    ]
    assert detect_priority_loops(snapshots) == []


def test_summarize_counts():
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=-1.0, hysteresis=1.0),
    ))
    findings = audit_snapshots([_snapshot(meas=meas), _snapshot(gci=2, meas=meas)])
    summary = summarize(findings)
    assert summary["HC002"] == 2


def test_audit_real_population(tiny_d2, server):
    """The synthetic carriers should trip some of the paper's findings."""
    from repro.core.crawler import ConfigCrawler

    snapshots = []
    from repro.cellnet.rat import RAT
    from repro.rrc.diag import DiagWriter

    cells = [c for c in tiny_d2.plan.registry.by_carrier("A")
             if c.rat is RAT.LTE][:200]
    writer = DiagWriter.in_memory()
    for cell in cells:
        for message in tiny_d2.server.sib_messages(cell):
            writer.write(0, message)
        writer.write(0, tiny_d2.server.connection_reconfiguration(cell))
    snapshots = ConfigCrawler.crawl(writer.getvalue())
    findings = audit_snapshots(snapshots)
    codes = {f.code for f in findings}
    assert "HC006" in codes
