"""Tests for traffic models."""

from repro.simulate.traffic import ConstantRate, NoTraffic, Ping, Speedtest


def test_speedtest_uses_full_capacity():
    model = Speedtest()
    assert model.delivered_bits(10e6, 200, 0) == 10e6 * 0.2
    assert model.generates_user_traffic


def test_constant_rate_caps_at_rate():
    model = ConstantRate(rate_bps=1e6)
    delivered = model.delivered_bits(10e6, 200, 0)
    assert delivered == 1e6 * 0.2


def test_constant_rate_caps_at_capacity():
    model = ConstantRate(rate_bps=1e6)
    assert model.delivered_bits(0.5e6, 200, 0) == 0.5e6 * 0.2


def test_constant_rate_backlog_drains():
    model = ConstantRate(rate_bps=1e6)
    model.delivered_bits(0.0, 1000, 0)       # one second of outage queues
    burst = model.delivered_bits(10e6, 1000, 1000)
    assert burst > 1e6  # delivered more than one second's offered load


def test_constant_rate_backlog_bounded():
    model = ConstantRate(rate_bps=1e6, max_backlog_bits=2e6)
    for i in range(100):
        model.delivered_bits(0.0, 1000, i * 1000)
    assert model._backlog_bits <= 2e6


def test_ping_carries_no_data():
    model = Ping(interval_s=5.0)
    assert model.delivered_bits(10e6, 200, 0) == 0.0
    assert model.generates_user_traffic


def test_ping_probe_schedule():
    model = Ping(interval_s=5.0)
    due = [t for t in range(0, 20_000, 200) if model.probe_due(t, 200)]
    assert due == [0, 5000, 10000, 15000]


def test_no_traffic_is_idle():
    model = NoTraffic()
    assert not model.generates_user_traffic
    assert model.delivered_bits(10e6, 200, 0) == 0.0
