"""Endpoint-semantics tests for the interval algebra.

The ping-pong/graph passes historically used closed intervals with an
undocumented half-open reading of strict TS 36.331 inequalities; the
coverage analyzer needs the endpoint semantics to be explicit.  These
tests pin down the degenerate and touching-boundary cases.
"""

from __future__ import annotations

import pytest

from repro.config.events import EventConfig, EventType
from repro.lint.pingpong import (
    EMPTY_INTERVAL,
    FULL_RSRP,
    Interval,
    a4_neighbor_interval,
    a5_neighbor_interval,
    a5_serving_interval,
)


class TestDegenerateIntervals:
    def test_closed_single_point_is_nonempty(self):
        point = Interval(-100.0, -100.0)
        assert not point.empty
        assert point.width == 0.0
        assert point.contains(-100.0)

    def test_open_single_point_variants_are_empty(self):
        assert Interval(-100.0, -100.0, lo_open=True).empty
        assert Interval(-100.0, -100.0, hi_open=True).empty
        assert Interval(-100.0, -100.0, lo_open=True, hi_open=True).empty

    def test_inverted_bounds_stay_empty(self):
        assert Interval(0.0, -1.0).empty
        assert EMPTY_INTERVAL.empty
        assert not EMPTY_INTERVAL.contains(0.0)

    def test_empty_interval_has_zero_width(self):
        assert Interval(-100.0, -100.0, hi_open=True).width == 0.0
        assert EMPTY_INTERVAL.width == 0.0


class TestContains:
    def test_open_endpoints_exclude_bounds(self):
        half = Interval(-120.0, -100.0, hi_open=True)
        assert half.contains(-120.0)
        assert half.contains(-110.0)
        assert not half.contains(-100.0)
        strict = Interval(-120.0, -100.0, lo_open=True, hi_open=True)
        assert not strict.contains(-120.0)
        assert not strict.contains(-100.0)

    def test_closed_default_matches_historical_behaviour(self):
        closed = Interval(-120.0, -100.0)
        assert closed.contains(-120.0)
        assert closed.contains(-100.0)


class TestIntersect:
    def test_open_wins_on_tied_bound(self):
        a = Interval(-120.0, -100.0, hi_open=True)
        b = Interval(-110.0, -100.0)
        meet = a.intersect(b)
        assert meet == Interval(-110.0, -100.0, hi_open=True)
        assert not meet.contains(-100.0)

    def test_touching_closed_bounds_meet_in_a_point(self):
        a = Interval(-120.0, -100.0)
        b = Interval(-100.0, -80.0)
        meet = a.intersect(b)
        assert not meet.empty
        assert meet.lo == meet.hi == -100.0

    def test_touching_with_an_open_side_is_empty(self):
        a = Interval(-120.0, -100.0, hi_open=True)
        b = Interval(-100.0, -80.0)
        assert a.intersect(b).empty

    def test_strict_interior_bound_keeps_its_openness(self):
        a = Interval(-120.0, -90.0)
        b = Interval(-110.0, -80.0, lo_open=True)
        meet = a.intersect(b)
        assert meet.lo == -110.0 and meet.lo_open
        assert meet.hi == -90.0 and not meet.hi_open


class TestUnionAndTouching:
    def test_touching_closed_bounds_merge(self):
        a = Interval(-120.0, -100.0)
        b = Interval(-100.0, -80.0)
        assert a.overlaps_or_touches(b)
        assert a.union(b) == Interval(-120.0, -80.0)

    def test_half_open_touching_closed_merges(self):
        a = Interval(-120.0, -100.0, hi_open=True)
        b = Interval(-100.0, -80.0)
        assert a.union(b) == Interval(-120.0, -80.0)

    def test_open_open_touch_leaves_a_point_gap(self):
        a = Interval(-120.0, -100.0, hi_open=True)
        b = Interval(-100.0, -80.0, lo_open=True)
        assert not a.overlaps_or_touches(b)
        assert a.union(b) is None

    def test_disjoint_intervals_do_not_merge(self):
        assert Interval(-120.0, -110.0).union(Interval(-100.0, -90.0)) is None

    def test_empty_is_union_identity(self):
        a = Interval(-120.0, -100.0, hi_open=True)
        assert a.union(EMPTY_INTERVAL) == a
        assert EMPTY_INTERVAL.union(a) == a

    def test_union_is_commutative_on_overlap(self):
        a = Interval(-120.0, -95.0, lo_open=True)
        b = Interval(-100.0, -80.0, hi_open=True)
        assert a.union(b) == b.union(a) == Interval(
            -120.0, -80.0, lo_open=True, hi_open=True
        )


class TestCovers:
    def test_closed_covers_open_at_shared_bound(self):
        outer = Interval(-120.0, -100.0)
        inner = Interval(-120.0, -100.0, lo_open=True, hi_open=True)
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_everything_covers_empty(self):
        assert EMPTY_INTERVAL.covers(EMPTY_INTERVAL)
        assert Interval(-90.0, -80.0).covers(EMPTY_INTERVAL)
        assert not EMPTY_INTERVAL.covers(Interval(-90.0, -80.0))

    def test_full_range_covers_event_intervals(self):
        config = EventConfig(
            event=EventType.A5, threshold1=-100.0, threshold2=-95.0,
            hysteresis=2.0,
        )
        assert FULL_RSRP.covers(a5_serving_interval(config))
        assert FULL_RSRP.covers(a5_neighbor_interval(config))


class TestEventIntervalsAreStrict:
    def test_a5_serving_clause_is_half_open(self):
        config = EventConfig(
            event=EventType.A5, threshold1=-100.0, threshold2=-95.0,
            hysteresis=2.0,
        )
        serving = a5_serving_interval(config)
        assert serving.hi == -102.0
        assert serving.hi_open
        assert not serving.contains(-102.0)
        assert serving.contains(-102.5)

    def test_a5_neighbor_clause_is_half_open(self):
        config = EventConfig(
            event=EventType.A5, threshold1=-100.0, threshold2=-95.0,
            hysteresis=2.0,
        )
        neighbor = a5_neighbor_interval(config)
        assert neighbor.lo == -93.0
        assert neighbor.lo_open
        assert not neighbor.contains(-93.0)
        assert neighbor.contains(-92.5)

    def test_a4_neighbor_clause_is_half_open(self):
        config = EventConfig(
            event=EventType.A4, threshold1=-105.0, hysteresis=1.0,
        )
        neighbor = a4_neighbor_interval(config)
        assert neighbor.lo == -104.0
        assert neighbor.lo_open

    def test_str_renders_endpoint_style(self):
        assert str(Interval(-120.0, -100.0)) == "[-120, -100] dBm"
        assert str(Interval(-120.0, -100.0, hi_open=True)) == "[-120, -100) dBm"
        assert str(Interval(-120.0, -100.0, lo_open=True)) == "(-120, -100] dBm"
        assert str(EMPTY_INTERVAL) == "(empty)"


@pytest.mark.parametrize("lo_open", [False, True])
@pytest.mark.parametrize("hi_open", [False, True])
def test_intersect_with_self_is_identity(lo_open, hi_open):
    interval = Interval(-110.0, -90.0, lo_open=lo_open, hi_open=hi_open)
    assert interval.intersect(interval) == interval
    assert interval.union(interval) == interval
    assert interval.covers(interval)
