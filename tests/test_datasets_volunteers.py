"""Tests for the volunteer population model."""

from repro.datasets.volunteers import VOLUNTEER_WINDOW, volunteer_population


def test_population_deterministic():
    a = volunteer_population(seed=11)
    b = volunteer_population(seed=11)
    assert [(v.volunteer_id, v.city.name, v.carrier) for v in a] == [
        (v.volunteer_id, v.city.name, v.carrier) for v in b
    ]


def test_population_size():
    population = volunteer_population(seed=11, n_volunteers=35)
    regular = [v for v in population if not v.dense]
    dense = [v for v in population if v.dense]
    assert len(regular) == 35
    assert len(dense) == 20  # 5 US cities x 4 carriers


def test_volunteers_subscribe_to_local_carriers():
    from repro.cellnet.carrier import CARRIERS

    for volunteer in volunteer_population(seed=11):
        assert CARRIERS[volunteer.carrier].country == volunteer.city.country


def test_sessions_sorted_and_in_window():
    for volunteer in volunteer_population(seed=11):
        days = [s.day for s in volunteer.sessions]
        assert days == sorted(days)
        if not volunteer.dense:
            assert all(VOLUNTEER_WINDOW[0] <= d <= VOLUNTEER_WINDOW[1] for d in days)


def test_dense_volunteers_cover_us_cities():
    dense = [v for v in volunteer_population(seed=11) if v.dense]
    cities = {v.city.name for v in dense}
    assert cities == {"Chicago", "LA", "Indianapolis", "Columbus", "Lafayette"}
    carriers = {v.carrier for v in dense}
    assert carriers == {"A", "T", "V", "S"}
