"""Vectorized-vs-scalar parity and the perf plumbing around it.

The vectorized UE tick loop is only acceptable if it is *bit-identical*
to the scalar reference: same tick samples, same handoffs, same diag
log bytes.  These tests drive both paths over multi-handoff drives and
compare the full result bundles, plus the supporting machinery (snapshot
reuse across the runner tick, the ``REPRO_PROFILE`` hook, the
``REPRO_SCALAR`` opt-out).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellnet.world import RadioEnvironment
from repro.simulate.runner import DriveSimulator
from repro.simulate.traffic import NoTraffic, Speedtest
from repro.ue.measurement import MeasurementEngine, default_vectorized


def _drive(scenario, vectorized, traffic, duration_s=240.0, seed=3):
    sim = DriveSimulator(
        scenario.env, scenario.server, "A", seed=seed,
        vectorized=vectorized, config_lint=False,
    )
    trajectory = scenario.urban_trajectory(
        np.random.default_rng(99), duration_s=duration_s
    )
    return sim.run(trajectory, traffic)


@pytest.mark.parametrize("traffic_cls", [Speedtest, NoTraffic], ids=["active", "idle"])
def test_vectorized_drive_bit_identical(scenario, traffic_cls):
    scalar = _drive(scenario, False, traffic_cls())
    vector = _drive(scenario, True, traffic_cls())
    # The drives must cross cells, or parity is vacuous.
    assert len(scalar.handoffs) >= 2
    assert vector.samples == scalar.samples
    assert vector.handoffs == scalar.handoffs
    assert vector.diag_log == scalar.diag_log
    assert vector.ping_rtts_ms == scalar.ping_rtts_ms


def test_runner_reuses_ue_snapshot(scenario, monkeypatch):
    """Ground-truth sampling shares the tick's snapshot: one physics
    pass per tick, not two."""
    calls = {"n": 0}
    orig = RadioEnvironment.snapshot

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return orig(self, *args, **kwargs)

    monkeypatch.setattr(RadioEnvironment, "snapshot", counting)
    result = _drive(scenario, True, Speedtest(), duration_s=60.0)
    assert calls["n"] == len(result.samples)


def test_engine_snapshot_memoized(scenario):
    origin = scenario.cities[0].origin
    engine = MeasurementEngine(scenario.env, np.random.default_rng(5))
    first = engine.snapshot(origin, "A")
    assert engine.snapshot(origin, "A") is first
    moved = engine.snapshot(origin.offset(40.0, 0.0), "A")
    assert moved is not first


def test_profile_hook(scenario, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "1")
    result = _drive(scenario, True, Speedtest(), duration_s=30.0)
    assert result.profile is not None
    for stage in ("ue_tick", "ground_truth", "measurement", "events"):
        assert result.profile[stage] > 0.0


def test_profile_off_by_default(scenario):
    result = _drive(scenario, True, Speedtest(), duration_s=30.0)
    assert result.profile is None


def test_scalar_env_opt_out(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR", raising=False)
    assert default_vectorized() is True
    monkeypatch.setenv("REPRO_SCALAR", "1")
    assert default_vectorized() is False
