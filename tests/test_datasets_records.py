"""Tests for dataset record types."""

from repro.datasets.records import ConfigSample, HandoffInstance


def test_config_sample_json_roundtrip():
    sample = ConfigSample(
        carrier="A", gci=12, rat="LTE", channel=850, city="Chicago",
        parameter="q_hyst", value=4.0, observed_day=120.5, round_index=2,
    )
    assert ConfigSample.from_json(sample.to_json()) == sample


def test_config_sample_list_value_roundtrip():
    sample = ConfigSample(
        carrier="A", gci=12, rat="LTE", channel=850, city="Chicago",
        parameter="carrier_freqs_geran", value=[128, 190],
    )
    rebuilt = ConfigSample.from_json(sample.to_json())
    assert rebuilt.value == (128, 190)
    assert rebuilt.value_key == (128, 190)


def test_value_key_hashable():
    sample = ConfigSample(
        carrier="A", gci=1, rat="LTE", channel=850, city="X",
        parameter="p", value=[1, 2],
    )
    assert hash(sample.value_key) == hash((1, 2))


def test_handoff_instance_json_roundtrip():
    instance = HandoffInstance(
        kind="active", carrier="A", time_ms=1234, source_gci=1, target_gci=2,
        source_channel=850, target_channel=9820, intra_freq=False,
        decisive_event="A3", decisive_metric="rsrp",
        decisive_config={"offset": 3.0, "hysteresis": 1.0},
        rsrp_before=-108.0, rsrp_after=-98.0,
        min_throughput_before_bps=1.2e6, report_to_handover_ms=150,
    )
    assert HandoffInstance.from_json(instance.to_json()) == instance


def test_delta_rsrp():
    instance = HandoffInstance(
        kind="idle", carrier="A", time_ms=0, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850, intra_freq=True,
        rsrp_before=-110.0, rsrp_after=-102.5,
    )
    assert instance.delta_rsrp == 7.5


def test_delta_rsrp_none_when_missing():
    instance = HandoffInstance(
        kind="idle", carrier="A", time_ms=0, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850, intra_freq=True,
    )
    assert instance.delta_rsrp is None
