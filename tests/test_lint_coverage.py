"""Signal-space coverage analyzer (HC401-HC405) tests.

Covers the fire-region extraction, the critical-band gap subtraction,
each rule's trigger and clean cases, the per-cell digest cache, and the
worker-count independence of full reports.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.config.events import EventConfig, EventType
from repro.config.lte import (
    InterFreqLayerConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.core.crawler import CellConfigSnapshot
from repro.lint.baseline import Baseline
from repro.lint.coverage import (
    CRITICAL_BAND,
    CoverageAnalyzer,
    analyze_cell,
    coverage_gaps,
    fire_regions,
)
from repro.lint.engine import lint_snapshots, lint_world
from repro.lint.fixtures import dead_zone_fixture
from repro.lint.pingpong import Interval
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.witness import ACCEPTABLE_SERVICE_DBM, RLF_RSRP_DBM

ALL_HC4XX = ("HC401", "HC402", "HC403", "HC404", "HC405")


def _snapshot(
    events: tuple[EventConfig, ...],
    s_measure: float = -44.0,
    gci: int = 0x100,
    channel: int = 1975,
    serving: ServingCellConfig | None = None,
    layers: tuple[InterFreqLayerConfig, ...] = (),
) -> CellConfigSnapshot:
    config = LteCellConfig(
        serving=serving or ServingCellConfig(),
        inter_freq_layers=layers,
        measurement=MeasurementConfig(events=events, s_measure=s_measure),
    )
    return CellConfigSnapshot(
        carrier="A", gci=gci, rat="LTE", channel=channel, city="X",
        first_seen_ms=0, lte_config=config,
    )


def _a5(t1: float, t2: float, hys: float = 1.0, ttt: int = 480) -> EventConfig:
    return EventConfig(
        event=EventType.A5, threshold1=t1, threshold2=t2,
        hysteresis=hys, time_to_trigger_ms=ttt,
    )


SANE = _a5(-106.0, -106.0)


class TestFireRegions:
    def test_a5_serving_region_clipped_by_smeasure(self):
        snap = _snapshot((_a5(-100.0, -95.0),), s_measure=-120.0)
        (a5,) = [r for r in fire_regions(snap) if r.label == "A5[0]"]
        # serving clause [floor, -101) intersected with gate [floor, -120]
        assert a5.serving == Interval(-140.0, -120.0)
        assert a5.handoff and a5.mode == "active"

    def test_a1_a2_regions_never_hand_off(self):
        snap = _snapshot((
            EventConfig(event=EventType.A1, threshold1=-80.0, hysteresis=1.0),
            EventConfig(event=EventType.A2, threshold1=-110.0, hysteresis=1.0),
        ))
        regions = {r.label: r for r in fire_regions(snap)}
        assert not regions["A1[0]"].handoff
        assert not regions["A2[1]"].handoff
        assert regions["A2[1]"].serving == Interval(
            -140.0, -111.0, hi_open=True
        )

    def test_a3_region_is_relative_with_margin(self):
        snap = _snapshot((EventConfig(
            event=EventType.A3, offset=3.0, hysteresis=1.0,
        ),))
        (a3,) = [r for r in fire_regions(snap) if r.label == "A3[0]"]
        assert a3.relative and a3.margin_db == 4.0 and a3.handoff

    def test_rsrq_event_gets_unconstrained_serving(self):
        snap = _snapshot((replace(_a5(-10.0, -10.0), metric="rsrq"),))
        (a5,) = [r for r in fire_regions(snap) if r.label == "A5[0]"]
        assert a5.serving.covers(CRITICAL_BAND)

    def test_non_lte_snapshot_has_no_regions(self):
        snap = CellConfigSnapshot(
            carrier="A", gci=1, rat="UMTS", channel=4385, city="X",
            first_seen_ms=0,
        )
        assert fire_regions(snap) == ()

    def test_lower_priority_layer_adds_idle_reselection_region(self):
        layer = InterFreqLayerConfig(
            dl_carrier_freq=850, cell_reselection_priority=2,
        )
        snap = _snapshot((SANE,), layers=(layer,))
        labels = [r.label for r in fire_regions(snap)]
        assert "resel-lower" in labels
        no_layer = _snapshot((SANE,))
        assert "resel-lower" not in [r.label for r in fire_regions(no_layer)]


class TestGapSubtraction:
    def test_sane_a5_leaves_no_gap(self):
        assert coverage_gaps(fire_regions(_snapshot((SANE,)))) == ()

    def test_buried_a5_leaves_the_critical_band_uncovered(self):
        snap = _snapshot((_a5(-126.0, -121.0, ttt=1024),))
        (gap,) = coverage_gaps(fire_regions(snap))
        assert gap == Interval(-127.0, -115.0)

    def test_partial_coverage_splits_the_band(self):
        # Two A5s covering [-140, -125) and (-119-eps side) leave a
        # middle gap.
        snap = _snapshot((
            _a5(-124.0, -120.0),          # serving < -125
            replace(_a5(-106.0, -106.0), threshold1=-106.0),
        ), s_measure=-118.0)
        # second event clipped by gate [-140, -118]: covers [-140, -118]
        gaps = coverage_gaps(fire_regions(snap))
        assert gaps == (Interval(-118.0, -115.0, lo_open=True),)

    def test_idle_reselection_does_not_count_as_coverage(self):
        layer = InterFreqLayerConfig(
            dl_carrier_freq=850, cell_reselection_priority=2,
        )
        snap = _snapshot((_a5(-126.0, -121.0),), layers=(layer,))
        # resel-lower covers [floor, -116] but is idle-mode only.
        (gap,) = coverage_gaps(fire_regions(snap))
        assert gap == Interval(-127.0, -115.0)


class TestRules:
    def test_hc401_fires_with_witness_and_sane_config_is_clean(self):
        bad = _snapshot((_a5(-126.0, -121.0, ttt=1024),))
        result = analyze_cell(bad, ("HC401",))
        (finding,) = result.findings
        assert finding.code == "HC401" and finding.severity == "problem"
        ((fingerprint, witness),) = result.witnesses
        assert fingerprint == finding.fingerprint
        assert witness.kind == "missed-handoff"
        assert witness.exit_dbm <= RLF_RSRP_DBM
        assert analyze_cell(_snapshot((SANE,)), ("HC401",)).findings == ()

    def test_hc402_shadowed_a5_behind_laxer_a4(self):
        a4 = EventConfig(
            event=EventType.A4, threshold1=-100.0, hysteresis=1.0,
            time_to_trigger_ms=100,
        )
        a5 = _a5(-110.0, -95.0, ttt=480)
        result = analyze_cell(_snapshot((a4, a5)), ("HC402",))
        (finding,) = result.findings
        assert "A5[1]" in finding.message and "A4[0]" in finding.message
        ((_, witness),) = result.witnesses
        assert witness.subject_event == "A5[1]"
        # The A4 alone (or the pair with a faster A5) is clean.
        assert analyze_cell(_snapshot((a4,)), ("HC402",)).findings == ()

    def test_hc403_a2_gate_below_reachable_entry(self):
        a2 = EventConfig(
            event=EventType.A2, threshold1=-120.0, hysteresis=1.0,
        )
        a4 = EventConfig(
            event=EventType.A4, threshold1=-90.0, hysteresis=1.0,
        )
        result = analyze_cell(_snapshot((a2, a4)), ("HC403",))
        (finding,) = result.findings
        assert "A2[0]" in finding.message and "A4[1]" in finding.message
        # A sane A4 floor within 25 dB of the gate is clean.
        ok = EventConfig(
            event=EventType.A4, threshold1=-105.0, hysteresis=1.0,
        )
        assert analyze_cell(_snapshot((a2, ok)), ("HC403",)).findings == ()

    def test_hc404_ttt_exceeds_dwell(self):
        bad = _snapshot((_a5(-126.0, -121.0, ttt=1024),))
        (finding,) = analyze_cell(bad, ("HC404",)).findings
        assert finding.code == "HC404"
        fast = _snapshot((_a5(-126.0, -121.0, ttt=256),))
        assert analyze_cell(fast, ("HC404",)).findings == ()

    def test_hc405_overlap_window_severity_scales(self):
        wide = _snapshot((_a5(-95.0, -110.0, ttt=100),), s_measure=-80.0)
        (finding,) = analyze_cell(wide, ("HC405",)).findings
        assert finding.severity == "problem"
        narrow = _snapshot((_a5(-103.0, -107.0, ttt=100),), s_measure=-80.0)
        (soft,) = analyze_cell(narrow, ("HC405",)).findings
        assert soft.severity == "warning"
        assert analyze_cell(_snapshot((SANE,)), ("HC405",)).findings == ()

    def test_hc405_negative_a3_margin(self):
        a3 = EventConfig(event=EventType.A3, offset=-2.0, hysteresis=0.5)
        (finding,) = analyze_cell(_snapshot((a3,)), ("HC405",)).findings
        assert "overlap" in finding.message
        ((_, witness),) = analyze_cell(_snapshot((a3,)), ("HC405",)).witnesses
        assert witness.kind == "ping-pong"

    def test_every_finding_has_a_witness(self):
        scenario = dead_zone_fixture(misconfigured=True)
        report = lint_world(
            scenario.env, scenario.server, codes=list(ALL_HC4XX),
            coverage=True,
        )
        assert report.findings
        for finding in report.findings:
            assert finding.fingerprint in report.witnesses


class TestAnalyzer:
    def test_cache_hits_on_unchanged_cells(self):
        analyzer = CoverageAnalyzer()
        snaps = [
            _snapshot((_a5(-126.0, -121.0, ttt=1024),), gci=0x10),
            _snapshot((SANE,), gci=0x11),
        ]
        first, stats1, _ = analyzer.analyze(snaps)
        assert (stats1.cells_analyzed, stats1.cells_cached) == (2, 0)
        second, stats2, _ = analyzer.analyze(snaps)
        assert (stats2.cells_analyzed, stats2.cells_cached) == (0, 2)
        assert first == second

    def test_mutating_one_cell_reanalyzes_only_it(self):
        analyzer = CoverageAnalyzer()
        snaps = [
            _snapshot((_a5(-126.0, -121.0, ttt=1024),), gci=0x10),
            _snapshot((SANE,), gci=0x11),
        ]
        analyzer.analyze(snaps)
        snaps[0] = _snapshot((SANE,), gci=0x10)
        findings, stats, _ = analyzer.analyze(snaps)
        assert (stats.cells_analyzed, stats.cells_cached) == (1, 1)
        assert findings == []

    def test_findings_independent_of_worker_count(self):
        snaps = [
            _snapshot((_a5(-126.0, -121.0, ttt=1024),), gci=0x10 + i)
            for i in range(5)
        ] + [_snapshot((_a5(-95.0, -110.0),), gci=0x20)]
        serial = CoverageAnalyzer().analyze(snaps)
        parallel = CoverageAnalyzer().analyze(snaps, workers=2)
        assert serial[0] == parallel[0]
        assert serial[1] == replace(parallel[1])
        assert sorted(serial[2]) == sorted(parallel[2])


class TestEngineAndReporters:
    def test_lint_snapshots_without_coverage_flag_skips_hc4xx(self):
        bad = _snapshot((_a5(-126.0, -121.0, ttt=1024),))
        report = lint_snapshots([bad], codes=list(ALL_HC4XX))
        assert report.findings == []
        assert report.coverage_stats is None
        assert report.rules_run == ()

    def test_lint_snapshots_with_coverage(self):
        bad = _snapshot((_a5(-126.0, -121.0, ttt=1024),))
        report = lint_snapshots([bad], codes=list(ALL_HC4XX), coverage=True)
        assert {f.code for f in report.findings} == {"HC401", "HC404"}
        assert report.rules_run == ALL_HC4XX
        assert report.coverage_stats is not None
        assert report.coverage_stats.witnesses == len(report.witnesses) == 2

    def test_baseline_suppression_drops_witnesses(self):
        bad = _snapshot((_a5(-126.0, -121.0, ttt=1024),))
        full = lint_snapshots([bad], codes=list(ALL_HC4XX), coverage=True)
        baseline = Baseline.from_findings(full.findings)
        report = lint_snapshots(
            [bad], codes=list(ALL_HC4XX), coverage=True, baseline=baseline,
        )
        assert report.findings == [] and len(report.suppressed) == 2
        assert report.witnesses == {}

    def test_reports_are_byte_identical_across_workers(self):
        scenario = dead_zone_fixture(misconfigured=True)
        reports = [
            lint_world(
                scenario.env, scenario.server, coverage=True, workers=n,
            )
            for n in (None, 2)
        ]
        assert render_json(reports[0]) == render_json(reports[1])
        assert render_sarif(reports[0]) == render_sarif(reports[1])

    def test_text_report_shows_coverage_stats_and_witness(self):
        scenario = dead_zone_fixture(misconfigured=True)
        report = lint_world(
            scenario.env, scenario.server, codes=list(ALL_HC4XX),
            coverage=True,
        )
        text = render_text(report)
        assert "coverage: 2 cells" in text
        assert "replayable witnesses" in text
        assert "witness (missed-handoff)" in text

    def test_json_report_embeds_witnesses(self):
        scenario = dead_zone_fixture(misconfigured=True)
        report = lint_world(
            scenario.env, scenario.server, codes=["HC401"], coverage=True,
        )
        payload = json.loads(render_json(report))
        assert payload["coverage_stats"]["gaps"] == 2
        assert set(payload["witnesses"]) == set(report.witnesses)


class TestSarifMixedFamilies:
    SCHEMA = None

    def _validate(self, payload: str) -> dict:
        import jsonschema
        from pathlib import Path

        schema_path = (
            Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json"
        )
        schema = json.loads(schema_path.read_text())
        jsonschema.Draft7Validator.check_schema(schema)
        document = json.loads(payload)
        jsonschema.Draft7Validator(schema).validate(document)
        return document

    def test_rule_metadata_appears_exactly_once_when_families_mix(self):
        # Cell-scope (HC0xx), graph-scope (HC2xx) and coverage-scope
        # (HC4xx) rules in one audit of the dead-zone fixture.
        scenario = dead_zone_fixture(misconfigured=True)
        report = lint_world(
            scenario.env, scenario.server, graph=True, coverage=True,
        )
        document = self._validate(render_sarif(report))
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        ids = [entry["id"] for entry in rules]
        assert len(ids) == len(set(ids)), f"duplicate rule metadata: {ids}"
        assert ids == sorted(ids)
        result_codes = {
            result["ruleId"] for result in document["runs"][0]["results"]
        }
        assert result_codes <= set(ids)
        assert {"HC401", "HC404"} <= set(ids)

    def test_finding_codes_outside_rules_run_still_get_metadata(self):
        # A report can carry findings stamped by rules outside
        # rules_run (the drift gate does this); their metadata must
        # still land in tool.driver.rules so every ruleId resolves.
        scenario = dead_zone_fixture(misconfigured=True)
        report = lint_world(
            scenario.env, scenario.server, codes=["HC401"], coverage=True,
        )
        report.rules_run = ()
        document = self._validate(render_sarif(report))
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert [entry["id"] for entry in rules] == ["HC401"]


class TestDeadZoneFixture:
    def test_misconfigured_fixture_trips_hc401_and_hc404(self):
        scenario = dead_zone_fixture(misconfigured=True)
        report = lint_world(
            scenario.env, scenario.server, codes=list(ALL_HC4XX),
            coverage=True,
        )
        assert {f.code for f in report.findings} == {"HC401", "HC404"}
        assert len([f for f in report.findings if f.code == "HC401"]) == 2

    def test_corrected_twin_is_hc4xx_clean(self):
        scenario = dead_zone_fixture(misconfigured=False)
        report = lint_world(
            scenario.env, scenario.server, codes=list(ALL_HC4XX),
            coverage=True,
        )
        assert report.findings == []
