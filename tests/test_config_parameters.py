"""Tests for the parameter registry (Table 2 / Table 4 counts)."""

import pytest

from repro.cellnet.rat import RAT
from repro.config.parameters import (
    REGISTRY,
    active_state_parameters,
    idle_state_parameters,
    parameter_count,
    parameters_for,
    spec_by_name,
)


def test_paper_parameter_counts():
    """Table 4: 66 LTE; 64+9+14+4 = 91 for the 3G/2G RATs."""
    assert parameter_count(RAT.LTE) == 66
    assert parameter_count(RAT.UMTS) == 64
    assert parameter_count(RAT.GSM) == 9
    assert parameter_count(RAT.EVDO) == 14
    assert parameter_count(RAT.CDMA1X) == 4
    legacy_total = sum(
        parameter_count(r) for r in (RAT.UMTS, RAT.GSM, RAT.EVDO, RAT.CDMA1X)
    )
    assert legacy_total == 91


def test_names_unique_per_rat():
    for rat, specs in REGISTRY.items():
        names = [s.name for s in specs]
        assert len(names) == len(set(names)), rat


def test_spec_by_name():
    spec = spec_by_name(RAT.LTE, "a3_offset")
    assert spec.message == "meas_config"
    assert "reporting" in spec.used_for
    assert spec.paper_symbol == "Delta_A3"


def test_spec_by_name_unknown_raises():
    with pytest.raises(KeyError):
        spec_by_name(RAT.LTE, "nonexistent_parameter")


def test_idle_plus_active_partition():
    idle = idle_state_parameters(RAT.LTE)
    active = active_state_parameters(RAT.LTE)
    assert len(idle) + len(active) == 66
    assert not {s.name for s in idle} & {s.name for s in active}
    assert len(active) == 26  # 7 events + common reporting config


def test_every_spec_has_valid_category():
    for specs in REGISTRY.values():
        for spec in specs:
            assert spec.category in ("cell_priority", "radio_signal", "timer", "misc")


def test_every_spec_has_valid_used_for():
    allowed = {"measurement", "reporting", "decision", "calibration"}
    for specs in REGISTRY.values():
        for spec in specs:
            assert spec.used_for
            assert set(spec.used_for) <= allowed


def test_sib_messages_cover_table2():
    messages = {s.message for s in parameters_for(RAT.LTE)}
    for sib in ("SIB3", "SIB4", "SIB5", "SIB6", "SIB7", "SIB8", "meas_config"):
        assert sib in messages


def test_table2_symbols_present():
    symbols = {s.paper_symbol for s in parameters_for(RAT.LTE) if s.paper_symbol}
    for symbol in ("Ps", "Pc", "Hs", "Delta_A3", "Theta_A5_S", "Theta_A5_C",
                   "T_reselect", "List_forbid"):
        assert symbol in symbols


def test_priorities_appear_in_every_sib_layer():
    names = {s.name for s in parameters_for(RAT.LTE)}
    for name in (
        "cell_reselection_priority",
        "cell_reselection_priority_inter",
        "cell_reselection_priority_utra",
        "cell_reselection_priority_geran",
        "cell_reselection_priority_cdma",
    ):
        assert name in names
