"""Tests for the event monitor (time-to-trigger reporting)."""

import pytest

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.lte import MeasurementConfig
from repro.ue.measurement import FilteredMeasurement
from repro.ue.reporting import EventMonitor


def _cell(gci, rat=RAT.LTE, channel=850):
    return Cell(cell_id=CellId("A", gci), rat=rat, channel=channel, pci=0,
                location=Point(0, 0))


def _fm(cell, rsrp, rsrq=-11.0):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=rsrq)


SERVING = _cell(1)
NEIGHBOR = _cell(2)


def _monitor(ttt=400, offset=3.0, hysteresis=1.0, s_measure=-44.0):
    config = MeasurementConfig(
        events=(
            EventConfig(event=EventType.A3, offset=offset, hysteresis=hysteresis,
                        time_to_trigger_ms=ttt if ttt in (0, 40, 320, 640) else 320),
        ),
        s_measure=s_measure,
    )
    return EventMonitor(config)


def test_report_fires_after_ttt():
    monitor = _monitor(ttt=320)
    serving = _fm(SERVING, -100.0)
    strong = [_fm(NEIGHBOR, -90.0)]
    assert monitor.step(0, serving, strong, []) == []
    assert monitor.step(200, serving, strong, []) == []
    reports = monitor.step(400, serving, strong, [])
    assert len(reports) == 1
    assert reports[0].event is EventType.A3
    assert reports[0].neighbors[0].cell.cell_id == NEIGHBOR.cell_id


def test_flicker_resets_ttt():
    monitor = _monitor(ttt=320)
    serving = _fm(SERVING, -100.0)
    strong = [_fm(NEIGHBOR, -90.0)]
    weak = [_fm(NEIGHBOR, -105.0)]
    monitor.step(0, serving, strong, [])
    monitor.step(200, serving, weak, [])    # leave condition holds: reset
    monitor.step(400, serving, strong, [])  # timer restarts here
    assert monitor.step(600, serving, strong, []) == []
    assert monitor.step(800, serving, strong, []) != []


def test_no_rereport_until_leave():
    monitor = _monitor(ttt=0)
    serving = _fm(SERVING, -100.0)
    strong = [_fm(NEIGHBOR, -90.0)]
    assert monitor.step(0, serving, strong, [])
    assert monitor.step(200, serving, strong, []) == []
    # Leave (below offset - hysteresis), then re-enter: report again.
    monitor.step(400, serving, [_fm(NEIGHBOR, -104.0)], [])
    assert monitor.step(600, serving, strong, [])


def test_s_measure_gates_neighbor_events():
    monitor = _monitor(ttt=0, s_measure=-103.0)
    strong_serving = _fm(SERVING, -80.0)
    weak_serving = _fm(SERVING, -110.0)
    neighbor = [_fm(NEIGHBOR, -70.0)]
    assert monitor.step(0, strong_serving, neighbor, []) == []
    assert monitor.step(200, weak_serving, neighbor, []) != []


def test_serving_only_event_ignores_gate():
    config = MeasurementConfig(
        events=(EventConfig(event=EventType.A2, threshold1=-105.0,
                            hysteresis=1.0, time_to_trigger_ms=0),),
        s_measure=-140.0,  # gate never opens
    )
    monitor = EventMonitor(config)
    reports = monitor.step(0, _fm(SERVING, -110.0), [], [])
    assert [r.event for r in reports] == [EventType.A2]
    assert reports[0].neighbors == ()


def test_periodic_reporting_interval():
    config = MeasurementConfig(
        events=(), periodic=PeriodicConfig(report_interval_ms=2048), s_measure=-44.0
    )
    monitor = EventMonitor(config)
    serving = _fm(SERVING, -100.0)
    neighbors = [_fm(NEIGHBOR, -95.0)]
    first = monitor.step(0, serving, neighbors, [])
    assert [r.event for r in first] == [EventType.PERIODIC]
    assert monitor.step(1000, serving, neighbors, []) == []
    assert monitor.step(2100, serving, neighbors, []) != []


def test_periodic_respects_max_report_cells():
    config = MeasurementConfig(
        events=(),
        periodic=PeriodicConfig(report_interval_ms=2048, max_report_cells=2),
        s_measure=-44.0,
    )
    monitor = EventMonitor(config)
    neighbors = [_fm(_cell(i), -90.0 - i) for i in range(2, 8)]
    reports = monitor.step(0, _fm(SERVING, -100.0), neighbors, [])
    assert len(reports[0].neighbors) == 2


def test_inter_rat_event_uses_inter_rat_neighbors():
    config = MeasurementConfig(
        events=(EventConfig(event=EventType.B1, threshold1=-100.0,
                            hysteresis=0.5, time_to_trigger_ms=0),),
        s_measure=-44.0,
    )
    monitor = EventMonitor(config)
    umts = _cell(9, rat=RAT.UMTS, channel=4385)
    reports = monitor.step(0, _fm(SERVING, -110.0), [], [_fm(umts, -95.0)])
    assert reports and reports[0].event is EventType.B1
    # LTE neighbors must not satisfy B1.
    monitor2 = EventMonitor(config)
    assert monitor2.step(0, _fm(SERVING, -110.0), [_fm(NEIGHBOR, -95.0)], []) == []


def test_armed_events_listing():
    config = MeasurementConfig(
        events=(EventConfig(event=EventType.A2, threshold1=-110.0),),
        periodic=PeriodicConfig(),
    )
    monitor = EventMonitor(config)
    assert monitor.armed_events == [EventType.A2, EventType.PERIODIC]


def test_multiple_neighbors_reported_sorted():
    monitor = _monitor(ttt=0)
    serving = _fm(SERVING, -100.0)
    neighbors = [_fm(_cell(2), -92.0), _fm(_cell(3), -88.0)]
    reports = monitor.step(0, serving, neighbors, [])
    values = [n.rsrp_dbm for n in reports[0].neighbors]
    assert values == sorted(values, reverse=True)
