"""Tests for the symbolic handoff-graph verifier (HC201-HC204)."""

import json
import warnings
from pathlib import Path

import jsonschema
import pytest

from repro.config.events import EventConfig, EventType
from repro.config.legacy import UmtsCellConfig
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatUtraConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.core.crawler import CellConfigSnapshot
from repro.lint import (
    FULL_RSRP,
    GraphAnalyzer,
    Interval,
    build_components,
    lint_world,
    render_json,
    render_sarif,
    render_text,
    warn_before_run,
    world_snapshots,
)
from repro.lint.engine import world_digest
from repro.lint.fixtures import loop_fixture
from repro.lint.pingpong import (
    a5_neighbor_interval,
    a5_serving_interval,
)

SARIF_SUBSET_SCHEMA = Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json"


# ---------------------------------------------------------------------------
# Interval algebra


def test_interval_basics():
    a = Interval(-110.0, -80.0)
    b = Interval(-90.0, -60.0)
    assert not a.empty
    assert a.width == 30.0
    assert a.intersect(b) == Interval(-90.0, -80.0)
    assert a.contains(-100.0) and not a.contains(-70.0)
    assert str(a) == "[-110, -80] dBm"


def test_interval_empty_and_disjoint():
    a = Interval(-110.0, -100.0)
    b = Interval(-90.0, -60.0)
    gap = a.intersect(b)
    assert gap.empty
    assert gap.width == 0.0
    assert str(gap) == "(empty)"
    assert FULL_RSRP.intersect(a) == a


def test_a5_interval_helpers():
    config = EventConfig(
        event=EventType.A5, threshold1=-100.0, threshold2=-95.0, hysteresis=2.0
    )
    assert a5_serving_interval(config).hi == -102.0
    assert a5_neighbor_interval(config).lo == -93.0


# ---------------------------------------------------------------------------
# Constructed-snapshot helpers


def _lte_snapshot(gci, channel, city="X", carrier="A", layers=(), events=(),
                  priority=3, utra_layers=()):
    config = LteCellConfig(
        serving=ServingCellConfig(cell_reselection_priority=priority),
        inter_freq_layers=tuple(
            InterFreqLayerConfig(dl_carrier_freq=ch, cell_reselection_priority=pr)
            for ch, pr in layers
        ),
        utra_layers=tuple(utra_layers),
        measurement=MeasurementConfig(events=tuple(events)),
    )
    return CellConfigSnapshot(
        carrier=carrier, gci=gci, rat="LTE", channel=channel, city=city,
        first_seen_ms=0, lte_config=config, meas_config=config.measurement,
    )


def _umts_snapshot(gci, channel=4385, city="X", carrier="A", **overrides):
    return CellConfigSnapshot(
        carrier=carrier, gci=gci, rat="UMTS", channel=channel, city=city,
        first_seen_ms=0, legacy_config=UmtsCellConfig(**overrides),
    )


def _analyze(snapshots, codes=None):
    return GraphAnalyzer().analyze(snapshots, codes=codes)


# ---------------------------------------------------------------------------
# The loop fixture: HC201/HC202 fire, the corrected twin is clean


def test_loop_fixture_reports_hc201_with_cycle_and_interval():
    scenario = loop_fixture(misconfigured=True)
    report = lint_world(scenario.env, scenario.server, graph=True)
    loops = [f for f in report.findings if f.code == "HC201"]
    assert loops, "misconfigured fixture must produce an active-mode loop"
    full_ring = [f for f in loops if f.subject == "LTE:850<->LTE:1975<->LTE:2000"]
    assert len(full_ring) == 1
    message = full_ring[0].message
    # The full cell cycle, hop by hop, closing on the starting cell...
    assert (
        "cell 1 (LTE ch850) -> cell 2 (LTE ch1975) -> "
        "cell 3 (LTE ch2000) -> cell 1 (LTE ch850)" in message
    )
    # ...plus the satisfying RSRP window and the trigger that carries it.
    assert "satisfying RSRP window (-111, -45) dBm" in message
    assert "via A5" in message
    assert full_ring[0].severity == "problem"


def test_loop_fixture_reports_idle_loop_too():
    scenario = loop_fixture(misconfigured=True)
    report = lint_world(scenario.env, scenario.server, graph=True)
    idle = [f for f in report.findings if f.code == "HC202"]
    assert len(idle) == 1
    assert "resel-higher" in idle[0].message
    assert idle[0].subject == "LTE:850<->LTE:1975<->LTE:2000"


def test_corrected_fixture_has_no_graph_findings():
    scenario = loop_fixture(misconfigured=False)
    report = lint_world(scenario.env, scenario.server, graph=True)
    assert [f for f in report.findings if f.code.startswith("HC2")] == []
    assert report.graph_stats is not None
    assert report.graph_stats.cycles_checked > 0  # checked, none feasible


# ---------------------------------------------------------------------------
# HC203 / HC204 on constructed snapshots


def test_hc203_flags_undeployed_target_layer():
    snapshots = [
        _lte_snapshot(1, 850, layers=[(9999, 7)]),
        _lte_snapshot(2, 1975),
    ]
    findings, _ = _analyze(snapshots, codes=["HC203"])
    dead = [f for f in findings if f.subject == "LTE:9999"]
    assert len(dead) == 1
    assert dead[0].gci == 1
    assert "no audited A cell in X deploys" in dead[0].message


def test_hc203_flags_unsatisfiable_trigger_interval():
    # A5 with threshold2 above the reporting ceiling: the neighbor clause
    # can never be met, so the rule is statically dead.
    event = EventConfig(
        event=EventType.A5, threshold1=-60.0, threshold2=-43.0, hysteresis=2.0
    )
    snapshots = [
        _lte_snapshot(1, 850, events=[event]),
        _lte_snapshot(2, 1975),
    ]
    findings, _ = _analyze(snapshots, codes=["HC203"])
    dead = [f for f in findings if f.subject.startswith("dead:A5")]
    assert len(dead) == 1
    assert "can never fire" in dead[0].message


def test_hc204_cross_rat_priority_inversion():
    # The LTE cell defers to UMTS (priority 5 > own 3); the UMTS cell's
    # SIB19 defers back to any EUTRA layer (priority 5 > serving 2).
    snapshots = [
        _lte_snapshot(
            1, 850,
            utra_layers=[InterRatUtraConfig(carrier_freq=4385,
                                            cell_reselection_priority=5)],
        ),
        _umts_snapshot(2, 4385, priority_eutra=5, priority_serving=2),
    ]
    findings, _ = _analyze(snapshots, codes=["HC204"])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "HC204"
    assert "LTE ch850" in finding.message and "UMTS ch4385" in finding.message
    assert "cannot be satisfied" in finding.message


def test_hc204_requires_multiple_rats():
    # A same-RAT priority cycle is HC103's business, not HC204's.
    snapshots = [
        _lte_snapshot(1, 850, layers=[(1975, 5)]),
        _lte_snapshot(2, 1975, layers=[(850, 5)]),
    ]
    findings, _ = _analyze(snapshots, codes=["HC204"])
    assert findings == []


# ---------------------------------------------------------------------------
# Determinism: byte-identical reports across runs and worker counts


def test_reports_byte_identical_across_runs_and_workers():
    scenario = loop_fixture(misconfigured=True)

    def render_all(workers):
        report = lint_world(scenario.env, scenario.server, graph=True,
                            workers=workers)
        return (render_text(report, verbose=True), render_json(report),
                render_sarif(report))

    serial_once = render_all(None)
    serial_again = render_all(None)
    pooled = render_all(2)
    assert serial_once == serial_again
    assert serial_once == pooled


# ---------------------------------------------------------------------------
# Incremental re-analysis


def _two_city_population(mutated=False):
    """Two independent components (cities X and Y), one cell mutable."""
    x_priority = 6 if mutated else 5
    return [
        _lte_snapshot(1, 850, city="X", layers=[(1975, x_priority)]),
        _lte_snapshot(2, 1975, city="X", layers=[(850, 5)]),
        _lte_snapshot(3, 850, city="Y", layers=[(1975, 5)]),
        _lte_snapshot(4, 1975, city="Y", layers=[(850, 5)]),
    ]


def test_incremental_reanalysis_touches_only_dirty_component():
    analyzer = GraphAnalyzer()
    first, stats = analyzer.analyze(_two_city_population())
    assert stats.components == 2
    assert stats.components_analyzed == 2 and stats.components_cached == 0

    again, stats = analyzer.analyze(_two_city_population())
    assert stats.components_analyzed == 0 and stats.components_cached == 2
    assert again == first

    mutated, stats = analyzer.analyze(_two_city_population(mutated=True))
    assert stats.components_analyzed == 1 and stats.components_cached == 1


def test_component_partitioning_groups_by_carrier_and_reachability():
    snapshots = [
        _lte_snapshot(1, 850, carrier="A", layers=[(1975, 5)]),
        _lte_snapshot(2, 1975, carrier="A"),
        _lte_snapshot(3, 850, carrier="T"),  # no rules: isolated node
        _lte_snapshot(4, 2000, carrier="T"),
    ]
    components = build_components(snapshots)
    keys = [(c.carrier, c.layers) for c in components]
    # Carrier A's two layers connect via the SIB5 rule; carrier T's two
    # layers share no transition and stay separate components.
    assert len(components) == 3
    assert keys[0][0] == "A" and len(keys[0][1]) == 2
    assert [k[0] for k in keys[1:]] == ["T", "T"]


def test_world_digest_tracks_content_and_seed():
    a = loop_fixture(misconfigured=True)
    b = loop_fixture(misconfigured=True)
    assert world_digest(a.env, 2018) == world_digest(b.env, 2018)
    assert world_digest(a.env, 2018) != world_digest(a.env, 2019)


# ---------------------------------------------------------------------------
# Preflight integration


def test_preflight_graph_report_memoized_across_servers():
    first_scenario = loop_fixture(misconfigured=True)
    with pytest.warns(Warning):
        first = warn_before_run(
            first_scenario.env, first_scenario.server, "A", graph=True
        )
    assert first.graph_stats is not None
    assert any(f.code == "HC201" for f in first.findings)
    # A fresh server over an identical world reuses the finished audit
    # (same object out of the content-digest memo) but still warns.
    second_scenario = loop_fixture(misconfigured=True)
    with pytest.warns(Warning):
        second = warn_before_run(
            second_scenario.env, second_scenario.server, "A", graph=True
        )
    assert second is first


def test_preflight_graph_env_toggle(monkeypatch):
    scenario = loop_fixture(misconfigured=True)
    monkeypatch.setenv("REPRO_LINT_GRAPH", "1")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        report = warn_before_run(scenario.env, scenario.server, "A")
    assert report.graph_stats is not None


def test_graph_codes_in_rules_run_only_when_graph_runs():
    scenario = loop_fixture(misconfigured=True)
    snapshots = world_snapshots(scenario.env, scenario.server)
    from repro.lint import lint_snapshots

    plain = lint_snapshots(snapshots)
    assert "HC201" not in plain.rules_run
    graphed = lint_snapshots(snapshots, graph=True)
    assert {"HC201", "HC202", "HC203", "HC204"} <= set(graphed.rules_run)


# ---------------------------------------------------------------------------
# SARIF structural validation (offline, against the committed subset schema)


def test_sarif_report_validates_against_schema_fixture():
    scenario = loop_fixture(misconfigured=True)
    report = lint_world(scenario.env, scenario.server, graph=True)
    payload = json.loads(render_sarif(report))
    schema = json.loads(SARIF_SUBSET_SCHEMA.read_text())
    jsonschema.Draft7Validator.check_schema(schema)
    jsonschema.Draft7Validator(schema).validate(payload)
    ids = {rule["id"] for rule in payload["runs"][0]["tool"]["driver"]["rules"]}
    assert "HC201" in ids


# ---------------------------------------------------------------------------
# Simulator cross-check: the static verdicts match dynamic behavior


def _drive(scenario, seed=3, duration_s=90.0):
    from repro.simulate import DriveSimulator, static_position
    from repro.simulate.traffic import Speedtest

    simulator = DriveSimulator(
        scenario.env, scenario.server, "A", seed=seed, config_lint=False
    )
    trajectory = static_position(scenario.centroid, duration_s=duration_s)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return simulator.run(trajectory, traffic=Speedtest())


def test_simulator_loops_where_hc201_fires():
    scenario = loop_fixture(misconfigured=True)
    report = lint_world(scenario.env, scenario.server, graph=True)
    assert any(f.code == "HC201" for f in report.findings)

    result = _drive(scenario)
    # A stationary device handing off dozens of times is the loop.
    assert len(result.handoffs) > 20
    # It cycles through all three cells, round and round.
    visited = {handoff.target.gci for handoff in result.handoffs}
    assert visited == {1, 2, 3}


def test_simulator_stable_where_graph_is_clean():
    scenario = loop_fixture(misconfigured=False)
    report = lint_world(scenario.env, scenario.server, graph=True)
    assert not any(f.code in ("HC201", "HC202") for f in report.findings)

    result = _drive(scenario)
    assert result.handoffs == []
