"""Witness synthesis and simulator replay tests.

The canary tests are the coverage analyzer's ground truth: an HC401
dead-zone witness replayed through the drive simulator must actually
exhibit the predicted missed-handoff failure, an HC405 overlap witness
must actually ping-pong, and in both cases the corrected twin of the
configuration must be failure-free in the *identical* geometry.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.events import EventConfig, EventType
from repro.config.lte import (
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.core.crawler import CellConfigSnapshot
from repro.lint.coverage import analyze_cell
from repro.lint.fixtures import dead_zone_fixture
from repro.lint.witness import (
    CoverageWitness,
    corrected_twin,
    distance_for_rsrp,
    replay_witness,
    replay_witnesses,
    rsrp_at_distance,
)


def _snapshot(config: LteCellConfig, gci: int = 0x300) -> CellConfigSnapshot:
    return CellConfigSnapshot(
        carrier="A", gci=gci, rat="LTE", channel=1975, city="X",
        first_seen_ms=0, lte_config=config,
    )


def _config(event: EventConfig, s_measure: float = -44.0) -> LteCellConfig:
    return LteCellConfig(
        serving=ServingCellConfig(),
        measurement=MeasurementConfig(events=(event,), s_measure=s_measure),
    )


DEAD_ZONE = _config(EventConfig(
    event=EventType.A5, threshold1=-126.0, threshold2=-121.0,
    hysteresis=1.0, time_to_trigger_ms=1024,
))
DEAD_ZONE_FIXED = _config(EventConfig(
    event=EventType.A5, threshold1=-106.0, threshold2=-106.0,
    hysteresis=1.0, time_to_trigger_ms=480,
))
OVERLAP = _config(EventConfig(
    event=EventType.A5, threshold1=-95.0, threshold2=-110.0,
    hysteresis=1.0, time_to_trigger_ms=100,
), s_measure=-80.0)
OVERLAP_FIXED = _config(EventConfig(
    event=EventType.A5, threshold1=-104.0, threshold2=-98.0,
    hysteresis=2.0, time_to_trigger_ms=480,
), s_measure=-80.0)


def test_radio_inversion_is_exact():
    for level in (-85.0, -104.0, -115.0, -127.0):
        distance = distance_for_rsrp(level, channel=1975)
        assert abs(rsrp_at_distance(distance, channel=1975) - level) < 1e-9


def test_witness_round_trips_through_dict():
    result = analyze_cell(_snapshot(DEAD_ZONE), ("HC401",))
    ((_, witness),) = result.witnesses
    restored = CoverageWitness.from_dict(witness.to_dict())
    assert restored == witness
    assert restored.config == witness.config


def test_hc401_witness_replay_reproduces_missed_handoff():
    """The dead-zone canary: the predicted failure actually happens."""
    result = analyze_cell(_snapshot(DEAD_ZONE), ("HC401",))
    ((_, witness),) = result.witnesses
    outcome = replay_witness(witness)
    assert outcome.reproduced
    assert outcome.kind == "missed-handoff"
    # The failure is observable: either an RLF or a sustained outage
    # that no handoff interrupts.
    assert outcome.rlf_count >= 1 or outcome.max_outage_run_ticks >= 25


def test_hc401_corrected_twin_is_failure_free():
    result = analyze_cell(_snapshot(DEAD_ZONE), ("HC401",))
    ((_, witness),) = result.witnesses
    twin = corrected_twin(witness.config, DEAD_ZONE_FIXED)
    # Statically clean...
    assert analyze_cell(_snapshot(twin), ("HC401",)).findings == ()
    # ...and dynamically rescued in the identical geometry: the handoff
    # arrives before service ever degrades into an outage.
    outcome = replay_witness(witness, serving_config=twin, neighbor_config=twin)
    assert not outcome.reproduced
    assert outcome.handoffs >= 1
    assert (
        outcome.first_outage_ms < 0
        or 0 <= outcome.first_handoff_ms < outcome.first_outage_ms
    )


def test_hc405_witness_replay_ping_pongs():
    result = analyze_cell(_snapshot(OVERLAP), ("HC405",))
    ((_, witness),) = result.witnesses
    assert witness.kind == "ping-pong"
    outcome = replay_witness(witness)
    assert outcome.reproduced
    assert outcome.flips >= 2


def test_hc405_corrected_twin_does_not_oscillate():
    result = analyze_cell(_snapshot(OVERLAP), ("HC405",))
    ((_, witness),) = result.witnesses
    twin = corrected_twin(witness.config, OVERLAP_FIXED)
    assert analyze_cell(_snapshot(twin), ("HC405",)).findings == ()
    outcome = replay_witness(witness, serving_config=twin, neighbor_config=twin)
    assert not outcome.reproduced
    assert outcome.flips == 0


def test_replay_witnesses_batches_deterministically():
    witnesses = [
        witness
        for snap in (_snapshot(DEAD_ZONE, gci=0x300),)
        for _, witness in analyze_cell(snap, ("HC401", "HC404")).witnesses
    ]
    assert len(witnesses) == 2
    serial = replay_witnesses(witnesses)
    sharded = replay_witnesses(witnesses, workers=2)
    assert serial == sharded
    assert all(outcome.reproduced for outcome in serial)


def test_fixture_witnesses_replay_end_to_end():
    """Fixture -> analyzer -> witness -> simulator, all four findings."""
    scenario = dead_zone_fixture(misconfigured=True)
    from repro.lint.engine import lint_world

    report = lint_world(
        scenario.env, scenario.server, codes=["HC401"], coverage=True,
    )
    assert len(report.witnesses) == 2
    outcomes = replay_witnesses(list(report.witnesses.values()))
    assert all(outcome.reproduced for outcome in outcomes)
