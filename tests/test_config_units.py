"""Tests for configuration value domains and quantization."""

import pytest

from repro.config.units import (
    DBM_THRESHOLD,
    Domain,
    HYSTERESIS_DB,
    OFFSET_DB,
    PRIORITY,
    TIME_TO_TRIGGER_MS,
    TTT_MS,
    nearest_time_to_trigger,
    quantize_half_db,
)


def test_quantize_half_db():
    assert quantize_half_db(1.26) == 1.5
    assert quantize_half_db(1.24) == 1.0
    assert quantize_half_db(-2.75) in (-2.5, -3.0)


def test_nearest_ttt():
    assert nearest_time_to_trigger(300) == 320
    assert nearest_time_to_trigger(0) == 0
    assert nearest_time_to_trigger(9999) == 5120
    assert nearest_time_to_trigger(50) == 40


def test_ttt_values_are_standard():
    assert 320 in TIME_TO_TRIGGER_MS
    assert 1280 in TIME_TO_TRIGGER_MS
    assert 100 in TIME_TO_TRIGGER_MS
    assert len(TIME_TO_TRIGGER_MS) == 16


def test_int_domain():
    assert PRIORITY.contains(0)
    assert PRIORITY.contains(7)
    assert not PRIORITY.contains(8)
    assert not PRIORITY.contains(-1)
    assert not PRIORITY.contains(3.5)


def test_float_domain_with_step():
    assert HYSTERESIS_DB.contains(1.5)
    assert not HYSTERESIS_DB.contains(1.3)
    assert not HYSTERESIS_DB.contains(-0.5)


def test_enum_domain():
    assert TTT_MS.contains(320)
    assert not TTT_MS.contains(321)


def test_dbm_domain_range():
    assert DBM_THRESHOLD.contains(-122)
    assert DBM_THRESHOLD.contains(-44)
    assert not DBM_THRESHOLD.contains(-141)
    assert not DBM_THRESHOLD.contains(-43)


def test_offset_domain_negative_values():
    """Negative A3 offsets are rare but valid (paper observes -1 dB)."""
    assert OFFSET_DB.contains(-1.0)
    assert OFFSET_DB.contains(15.0)


def test_list_domain():
    domain = Domain("list")
    assert domain.contains([1, 2])
    assert domain.contains(())
    assert not domain.contains(3)


def test_bool_is_not_numeric():
    assert not PRIORITY.contains(True)
