"""Tests for the LTE per-cell configuration structures."""

import pytest

from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatUtraConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.config.parameters import spec_by_name


@pytest.fixture
def full_config():
    return LteCellConfig(
        serving=ServingCellConfig(cell_reselection_priority=4),
        inter_freq_layers=(
            InterFreqLayerConfig(dl_carrier_freq=5110, cell_reselection_priority=2),
            InterFreqLayerConfig(dl_carrier_freq=9820, cell_reselection_priority=5),
        ),
        utra_layers=(InterRatUtraConfig(carrier_freq=4385, cell_reselection_priority=1),),
        measurement=MeasurementConfig(
            events=(
                EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0),
                EventConfig(event=EventType.A2, threshold1=-114.0, hysteresis=1.0),
            ),
            periodic=PeriodicConfig(),
        ),
    )


def test_all_samples_resolve_in_registry(full_config):
    for name, value in full_config.parameter_samples():
        spec = spec_by_name(RAT.LTE, name)
        assert spec.domain.contains(value), (name, value)


def test_validate_clean_config(full_config):
    assert full_config.validate() == []


def test_validate_flags_out_of_domain():
    config = LteCellConfig(serving=ServingCellConfig(cell_reselection_priority=9))
    problems = config.validate()
    assert any("cell_reselection_priority" in p for p in problems)


def test_idle_samples_exclude_measurement(full_config):
    idle_names = {name for name, _ in full_config.idle_parameter_samples()}
    assert "a3_offset" not in idle_names
    assert "s_measure" not in idle_names
    assert "cell_reselection_priority" in idle_names


def test_full_samples_include_measurement(full_config):
    names = {name for name, _ in full_config.parameter_samples()}
    assert "a3_offset" in names
    assert "s_measure" in names
    assert "report_interval" in names  # periodic reporting


def test_layer_samples_repeat_per_layer(full_config):
    names = [name for name, _ in full_config.parameter_samples()]
    assert names.count("dl_carrier_freq") == 2


def test_priority_of_layer_serving_channel(full_config):
    assert full_config.priority_of_layer(RAT.LTE, 850, serving_channel=850) == 4


def test_priority_of_layer_inter_freq(full_config):
    assert full_config.priority_of_layer(RAT.LTE, 9820, serving_channel=850) == 5
    assert full_config.priority_of_layer(RAT.LTE, 5110, serving_channel=850) == 2


def test_priority_of_layer_unknown_is_none(full_config):
    assert full_config.priority_of_layer(RAT.LTE, 2000, serving_channel=850) is None
    assert full_config.priority_of_layer(RAT.GSM, 128, serving_channel=850) is None


def test_priority_of_layer_inter_rat(full_config):
    assert full_config.priority_of_layer(RAT.UMTS, 4385, serving_channel=850) == 1
    assert full_config.priority_of_layer(RAT.UMTS, 9999, serving_channel=850) is None


def test_configs_are_immutable(full_config):
    with pytest.raises(AttributeError):
        full_config.serving.q_hyst = 2.0
