"""Tests for the UE state machine."""

import numpy as np
import pytest

from repro.cellnet.rat import RAT
from repro.rrc.messages import (
    MeasurementReport,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
)
from repro.ue.device import RrcState, UserEquipment, lte_config_from_sibs


@pytest.fixture
def ue(env, server):
    return UserEquipment(env, server, "A", seed=11)


@pytest.fixture
def origin(scenario):
    return scenario.cities[0].origin


def test_initial_camp_prefers_lte(ue, origin):
    cell = ue.initial_camp(origin)
    assert cell.rat is RAT.LTE
    assert ue.serving is cell
    assert ue.serving_config is not None
    assert ue.state is RrcState.IDLE


def test_camp_rebuilds_config_from_sibs(ue, origin, server):
    cell = ue.initial_camp(origin)
    assert ue.serving_config == server.lte_config(cell).__class__(
        serving=server.lte_config(cell).serving,
        intra_neighbors=server.lte_config(cell).intra_neighbors,
        inter_freq_layers=server.lte_config(cell).inter_freq_layers,
        utra_layers=server.lte_config(cell).utra_layers,
        geran_layers=server.lte_config(cell).geran_layers,
        cdma_layers=server.lte_config(cell).cdma_layers,
    )


def test_listeners_see_sibs_on_camp(ue, origin):
    seen = []
    ue.add_listener(lambda t, message, direction: seen.append((message, direction)))
    ue.initial_camp(origin)
    types = [type(m).__name__ for m, _ in seen]
    assert "Sib1" in types and "Sib3" in types
    assert all(direction == "down" for _, direction in seen)


def test_connect_arms_monitor(ue, origin):
    ue.initial_camp(origin)
    ue.connect(0)
    assert ue.state is RrcState.CONNECTED
    assert ue.monitor is not None


def test_release_disarms(ue, origin):
    ue.initial_camp(origin)
    ue.connect(0)
    ue.release(100)
    assert ue.state is RrcState.IDLE
    assert ue.monitor is None


def test_connect_before_camp_raises(ue):
    with pytest.raises(RuntimeError):
        ue.connect(0)


def test_connected_drive_emits_reports_and_handoffs(ue, scenario, origin):
    messages = []
    ue.add_listener(lambda t, m, d: messages.append((t, m, d)))
    ue.initial_camp(origin)
    ue.connect(0)
    # Walk across the city until a handoff happens.
    handoffs = []
    for tick in range(1, 2500):
        t = tick * 200
        location = origin.offset(tick * 2.2, 0.0)
        handoffs.extend(ue.tick(t, location))
        if handoffs:
            break
    assert handoffs, "no handoff within the walk"
    reports = [m for _, m, d in messages if isinstance(m, MeasurementReport)]
    assert reports
    commands = [
        m for _, m, d in messages
        if isinstance(m, RrcConnectionReconfiguration) and m.mobility is not None
    ]
    assert commands
    assert handoffs[0].kind == "active"
    assert handoffs[0].source != handoffs[0].target


def test_idle_drive_reselects(ue, scenario, origin):
    ue.initial_camp(origin)
    handoffs = []
    for tick in range(1, 2500):
        t = tick * 200
        location = origin.offset(tick * 2.2, 0.0)
        handoffs.extend(ue.tick(t, location))
        if handoffs:
            break
    assert handoffs
    assert handoffs[0].kind == "idle"
    assert ue.state is RrcState.IDLE


def test_interruption_window(ue, origin):
    ue.interrupted_until_ms = 1000
    assert ue.is_interrupted(500)
    assert not ue.is_interrupted(1000)


def test_phy_meas_emitted_periodically(ue, origin):
    from repro.rrc.messages import PhyServingMeas

    seen = []
    ue.add_listener(lambda t, m, d: seen.append(m))
    ue.initial_camp(origin)
    ue.connect(0)
    for tick in range(0, 11):
        ue.tick(tick * 200, origin)
    phy = [m for m in seen if isinstance(m, PhyServingMeas)]
    assert len(phy) >= 4  # 500 ms cadence over 2 s+


def test_lte_config_from_sibs_requires_sib3():
    with pytest.raises(ValueError, match="SIB3"):
        lte_config_from_sibs([Sib1(carrier="A", gci=1)])


def test_lte_config_from_sibs_minimal():
    from repro.config.lte import ServingCellConfig

    config = lte_config_from_sibs([Sib3(config=ServingCellConfig(q_hyst=2.0))])
    assert config.serving.q_hyst == 2.0
    assert config.inter_freq_layers == ()
