"""Tests for the deployment generator."""

import pytest

from repro.cellnet.carrier import CARRIERS, us_carriers
from repro.cellnet.deployment import (
    DeploymentPlan,
    US_CITIES,
    WORLD_CITIES,
    build_us_deployment,
    build_world_deployment,
    city_by_name,
    deploy_city,
    deploy_highway,
)
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT


def test_paper_cities_present():
    names = {c.name for c in US_CITIES}
    assert names == {"Chicago", "LA", "Indianapolis", "Columbus", "Lafayette"}


def test_city_sizes_follow_paper_order():
    """Chicago > LA > Indianapolis > Columbus > Lafayette (cell counts)."""
    rings = [c.rings for c in US_CITIES]
    assert rings == sorted(rings, reverse=True)


def test_city_by_name():
    assert city_by_name("Chicago").country == "US"
    with pytest.raises(KeyError):
        city_by_name("Atlantis")


def test_deploy_city_deterministic():
    plan_a = DeploymentPlan()
    plan_b = DeploymentPlan()
    cells_a = deploy_city(city_by_name("Lafayette"), plan_a, seed=9)
    cells_b = deploy_city(city_by_name("Lafayette"), plan_b, seed=9)
    assert [(c.cell_id, c.channel, c.location) for c in cells_a] == [
        (c.cell_id, c.channel, c.location) for c in cells_b
    ]


def test_deploy_city_seed_changes_layout():
    plan_a = DeploymentPlan()
    plan_b = DeploymentPlan()
    cells_a = deploy_city(city_by_name("Lafayette"), plan_a, seed=9)
    cells_b = deploy_city(city_by_name("Lafayette"), plan_b, seed=10)
    assert [c.location for c in cells_a] != [c.location for c in cells_b]


def test_deploy_city_only_local_carriers():
    plan = DeploymentPlan()
    cells = deploy_city(city_by_name("Seoul"), plan, seed=9)
    carriers = {c.carrier for c in cells}
    assert carriers <= {"KT", "SK"}


def test_cells_carry_city_name():
    plan = DeploymentPlan()
    cells = deploy_city(city_by_name("Lafayette"), plan, seed=9)
    assert all(c.city == "Lafayette" for c in cells)


def test_cdma_only_at_cdma_family_carriers():
    plan = build_us_deployment(seed=9)
    for cell in plan.registry:
        if cell.rat in (RAT.EVDO, RAT.CDMA1X):
            assert cell.carrier in ("V", "S")


def test_lte_dominates_deployment():
    plan = build_us_deployment(seed=9)
    cells = list(plan.registry)
    lte = sum(1 for c in cells if c.rat is RAT.LTE)
    assert lte / len(cells) > 0.6


def test_highway_corridor():
    plan = DeploymentPlan()
    cells = deploy_highway(
        Point(0, 0), Point(20_000, 0), plan, seed=9, carriers=us_carriers()
    )
    assert cells
    for cell in cells:
        assert -2000 <= cell.location.y <= 2000
        assert cell.city == "highway"


def test_world_deployment_scales_with_extra_rings():
    small = build_world_deployment(seed=9, extra_rings=0)
    # Just one extra ring balloons the cell count noticeably.
    big_city = city_by_name("Lafayette")
    plan = DeploymentPlan()
    deploy_city(
        type(big_city)(
            name=big_city.name, country=big_city.country,
            rings=big_city.rings + 2, site_spacing_m=big_city.site_spacing_m,
            origin=big_city.origin,
        ),
        plan,
        seed=9,
    )
    small_lafayette = [c for c in small.registry if c.city == "Lafayette"]
    assert len(plan.registry) > len(small_lafayette)


def test_gci_unique_per_carrier():
    plan = build_us_deployment(seed=9)
    seen = set()
    for cell in plan.registry:
        key = (cell.carrier, cell.cell_id.gci)
        assert key not in seen
        seen.add(key)


def test_world_deployment_covers_all_countries():
    plan = build_world_deployment(seed=9)
    countries_deployed = {
        CARRIERS[c.carrier].country for c in plan.registry
    }
    assert len(countries_deployed) >= 14
