"""Tests for the D1/D2 dataset builders (using the session fixtures)."""

from collections import Counter

from repro.cellnet.rat import RAT


# -- D1 -----------------------------------------------------------------------

def test_d1_has_both_kinds(tiny_d1):
    assert len(tiny_d1.store.active()) > 0
    assert len(tiny_d1.store.idle()) > 0


def test_d1_instances_are_lte_only(tiny_d1):
    env = tiny_d1.scenario.env
    from repro.cellnet.cell import CellId

    for instance in tiny_d1.store:
        source = env.get_cell(CellId(instance.carrier, instance.source_gci))
        target = env.get_cell(CellId(instance.carrier, instance.target_gci))
        assert source.rat is RAT.LTE
        assert target.rat is RAT.LTE


def test_d1_active_instances_have_decisive_events(tiny_d1):
    events = Counter(i.decisive_event for i in tiny_d1.store.active())
    assert None not in events
    assert events  # at least one event type observed
    assert set(events) <= {"A1", "A2", "A3", "A4", "A5", "P"}


def test_d1_a3_dominates(tiny_d1):
    """Fig. 5's headline: A3 is the most popular decisive event."""
    events = Counter(i.decisive_event for i in tiny_d1.store.active())
    assert events.most_common(1)[0][0] == "A3"


def test_d1_report_latency_in_paper_band(tiny_d1):
    latencies = [
        i.report_to_handover_ms
        for i in tiny_d1.store.active()
        if i.report_to_handover_ms is not None
    ]
    assert latencies
    assert all(80 <= latency <= 230 for latency in latencies)


def test_d1_idle_instances_classified(tiny_d1):
    classes = Counter(i.priority_class for i in tiny_d1.store.idle())
    assert set(classes) <= {"higher", "equal", "lower", None}
    assert classes.get("equal", 0) > 0


def test_d1_active_instances_carry_radio_context(tiny_d1):
    with_rsrp = [
        i for i in tiny_d1.store.active()
        if i.rsrp_before is not None and i.rsrp_after is not None
    ]
    assert len(with_rsrp) >= 0.8 * len(tiny_d1.store.active())


def test_d1_throughput_metric_present_for_traffic_drives(tiny_d1):
    with_throughput = [
        i for i in tiny_d1.store.active()
        if i.min_throughput_before_bps is not None
    ]
    assert with_throughput


# -- D2 -----------------------------------------------------------------------

def test_d2_covers_multiple_carriers(tiny_d2):
    carriers = {s.carrier for s in tiny_d2.store}
    assert {"A", "T", "V", "S"} <= carriers


def test_d2_covers_multiple_rats(tiny_d2):
    rats = {s.rat for s in tiny_d2.store}
    assert "LTE" in rats and "UMTS" in rats


def test_d2_lte_dominates(tiny_d2):
    """Table 4: LTE contributes ~72% of cells."""
    cells = {}
    for sample in tiny_d2.store:
        cells[(sample.carrier, sample.gci)] = sample.rat
    shares = Counter(cells.values())
    assert shares["LTE"] / sum(shares.values()) > 0.5


def test_d2_parameter_names_resolve(tiny_d2):
    from repro.config.parameters import spec_by_name

    seen = set()
    for sample in tiny_d2.store:
        key = (sample.rat, sample.parameter)
        if key in seen:
            continue
        seen.add(key)
        spec_by_name(RAT(sample.rat), sample.parameter)  # must not raise


def test_d2_has_repeated_observations(tiny_d2):
    from repro.core.analysis.temporal import multi_sample_cell_fraction

    assert multi_sample_cell_fraction(tiny_d2.store) > 0.2


def test_d2_deterministic():
    from repro.datasets.d2 import D2Options, build_d2

    options = D2Options(n_volunteers=2, include_dense=False)
    a = build_d2(options)
    b = build_d2(options)
    assert len(a.store) == len(b.store)
    assert a.store.unique_cells() == b.store.unique_cells()
