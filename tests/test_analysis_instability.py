"""Tests for the handoff-instability analyzer."""

import pytest

from repro.core.analysis.instability import (
    correlate_with_conflicts,
    detect_instability,
)
from repro.datasets.records import HandoffInstance


def _instance(t, source, target):
    return HandoffInstance(
        kind="active", carrier="A", time_ms=t, source_gci=source,
        target_gci=target, source_channel=850, target_channel=850,
        intra_freq=True, decisive_event="A3",
    )


def _chain(*gcis, start=0, step=3000):
    return [
        _instance(start + i * step, a, b)
        for i, (a, b) in enumerate(zip(gcis, gcis[1:]))
    ]


def test_empty_trace():
    report = detect_instability([])
    assert report.n_handoffs == 0
    assert report.ping_pong_rate == 0.0
    assert report.loops == []


def test_clean_progression_no_instability():
    report = detect_instability(_chain(1, 2, 3, 4, 5))
    assert report.n_ping_pongs == 0
    assert report.loops == []


def test_ping_pong_detection():
    report = detect_instability(_chain(1, 2, 1, 3))
    assert report.n_ping_pongs == 1
    assert report.ping_pong_rate == pytest.approx(0.5)


def test_slow_return_is_not_ping_pong():
    instances = [_instance(0, 1, 2), _instance(60_000, 2, 1)]
    report = detect_instability(instances)
    assert report.n_ping_pongs == 0


def test_two_cell_loop_detection():
    report = detect_instability(_chain(1, 2, 1, 2, 1, 2, 1))
    assert report.loops
    loop = report.loops[0]
    assert set(loop.cells) == {1, 2}
    assert loop.traversals >= 2
    assert report.looping_cells == {1, 2}


def test_three_cell_loop_detection():
    report = detect_instability(_chain(1, 2, 3, 1, 2, 3, 1, 2, 3))
    assert any(set(loop.cells) == {1, 2, 3} for loop in report.loops)


def test_loop_period():
    report = detect_instability(_chain(1, 2, 1, 2, 1, 2, 1, step=4000))
    loop = report.loops[0]
    assert loop.period_ms > 0


def test_pair_counts():
    report = detect_instability(_chain(1, 2, 1, 2, 1))
    assert report.pair_counts[(1, 2)] == 2
    assert report.pair_counts[(2, 1)] == 2


def test_correlation_with_conflicts():
    report = detect_instability(_chain(1, 2, 1, 2, 1, 2, 1))
    assert correlate_with_conflicts(report, {1, 2, 99}) == 1.0
    assert correlate_with_conflicts(report, {1}) == 0.5
    assert correlate_with_conflicts(report, set()) == 0.0


def test_correlation_without_loops():
    report = detect_instability(_chain(1, 2, 3))
    assert correlate_with_conflicts(report, {1, 2}) == 0.0


def test_instability_on_simulated_trace(tiny_d1):
    """The analyzer runs cleanly on real extracted traces."""
    active = list(tiny_d1.store.active().for_carrier("A"))
    report = detect_instability(active)
    assert report.n_handoffs == len(active)
    assert 0.0 <= report.ping_pong_rate <= 1.0
