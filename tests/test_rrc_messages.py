"""Tests for signaling message payload round-trips."""

import pytest

from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.legacy import GsmCellConfig, UmtsCellConfig
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatGeranConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.rrc.messages import (
    MESSAGE_TYPES,
    LegacySystemInfo,
    MeasResult,
    MeasurementReport,
    MobilityControlInfo,
    PhyServingMeas,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
    Sib5,
    Sib7,
)


def test_type_codes_unique():
    codes = [cls.TYPE_CODE for cls in MESSAGE_TYPES.values()]
    assert len(codes) == len(set(codes))


def test_sib3_roundtrip():
    sib3 = Sib3(config=ServingCellConfig(q_hyst=2.0, cell_reselection_priority=6))
    rebuilt = Sib3.from_payload(sib3.to_payload())
    assert rebuilt.config == sib3.config


def test_sib5_layers_roundtrip():
    sib5 = Sib5(layers=(
        InterFreqLayerConfig(dl_carrier_freq=5110),
        InterFreqLayerConfig(dl_carrier_freq=9820, cell_reselection_priority=5),
    ))
    rebuilt = Sib5.from_payload(sib5.to_payload())
    assert rebuilt.layers == sib5.layers


def test_sib7_carrier_freqs_tuple_restored():
    sib7 = Sib7(layers=(InterRatGeranConfig(carrier_freqs=(128, 190)),))
    rebuilt = Sib7.from_payload(sib7.to_payload())
    assert rebuilt.layers[0].carrier_freqs == (128, 190)


def test_reconfiguration_meas_config_roundtrip():
    meas = MeasurementConfig(
        events=(
            EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                        time_to_trigger_ms=320),
            EventConfig(event=EventType.A5, threshold1=-110.0, threshold2=-104.0),
        ),
        periodic=PeriodicConfig(report_interval_ms=5120),
        s_measure=-97.0,
    )
    message = RrcConnectionReconfiguration(meas_config=meas)
    rebuilt = RrcConnectionReconfiguration.from_payload(message.to_payload())
    assert rebuilt.meas_config == meas
    assert rebuilt.mobility is None


def test_reconfiguration_mobility_roundtrip():
    mobility = MobilityControlInfo(target_carrier="A", target_gci=99,
                                   target_channel=9820, target_pci=5)
    message = RrcConnectionReconfiguration(mobility=mobility)
    rebuilt = RrcConnectionReconfiguration.from_payload(message.to_payload())
    assert rebuilt.mobility == mobility
    assert rebuilt.meas_config is None
    assert rebuilt.mobility.target_cell_id.gci == 99


def test_measurement_report_cell_ids():
    report = MeasurementReport(
        serving=MeasResult(carrier="A", gci=1),
        neighbors=(MeasResult(carrier="A", gci=2),),
    )
    assert report.serving.cell_id.gci == 1
    assert report.neighbors[0].cell_id.gci == 2


def test_legacy_system_info_config_roundtrip():
    config = UmtsCellConfig(s_intrasearch=12.0, priority_eutra=6)
    message = LegacySystemInfo.from_config("A", 7, 4385, RAT.UMTS, config, city="LA")
    rebuilt = LegacySystemInfo.from_payload(message.to_payload())
    assert rebuilt.to_config() == config
    assert rebuilt.cell_id.gci == 7


def test_legacy_system_info_gsm():
    config = GsmCellConfig(cell_reselect_hysteresis=6.0)
    message = LegacySystemInfo.from_config("A", 8, 128, RAT.GSM, config)
    assert message.to_config() == config


def test_phy_serving_meas_roundtrip():
    meas = PhyServingMeas(carrier="A", gci=3, channel=850, rsrp_dbm=-101.0,
                          rsrq_db=-11.0, rrc_connected=True)
    rebuilt = PhyServingMeas.from_payload(meas.to_payload())
    assert rebuilt == meas


def test_sib1_cell_id():
    assert Sib1(carrier="T", gci=12).cell_id.carrier == "T"
