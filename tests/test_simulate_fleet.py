"""Tests for the fleet simulator (batched multi-UE lockstep runs).

The load-bearing guarantee is bit-parity: a fleet member's outputs
must equal a solo :class:`DriveSimulator` run with the same seed, no
matter the fleet size, the worker count, or whether the batched
(vectorized) or scalar reference path executed it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.rrc.codec import encode_message
from repro.rrc.messages import PhyServingMeas
from repro.simulate.fleet import (
    DEFAULT_MIX,
    FleetOptions,
    FleetSimulator,
    UEResult,
    _phy_template,
    aggregate,
    count_ping_pongs,
    make_traffic,
    mix_pattern,
    run_fleet,
    trajectory_for,
    ue_specs,
)
from repro.simulate.runner import DriveSimulator
from repro.simulate.scenarios import ScenarioSpec
from repro.ue.device import HandoffEvent
from repro.ue.measurement import MeasurementEngine

#: Small-world spec matching the session ``scenario`` fixture; the
#: process-level cache makes repeated ``build()`` calls free.
_SPEC = ScenarioSpec(name="lafayette", seed=7, config_seed=2018)


def _options(**overrides) -> FleetOptions:
    defaults = dict(
        scenario=_SPEC, n_ues=8, duration_s=40.0, keep_samples=True
    )
    defaults.update(overrides)
    return FleetOptions(**defaults)


@pytest.fixture(scope="module")
def fleet_results():
    options = _options()
    return options, FleetSimulator(options.scenario.build(), options).simulate()


# -- population assignment ------------------------------------------------


def test_mix_pattern_apportionment():
    pattern = mix_pattern(DEFAULT_MIX)
    assert len(pattern) == 20
    counts = {name: pattern.count(name) for name, _ in DEFAULT_MIX}
    # Largest-remainder over 20 slots: 55/25/10/10 % -> 11/5/2/2.
    assert counts == {"parked": 11, "transit": 5, "pedestrian": 2, "vehicle": 2}


def test_ue_specs_depend_only_on_index():
    options = _options()
    full = ue_specs(options)
    assert [s.index for s in full] == list(range(options.n_ues))
    assert ue_specs(options, start=3, count=2) == full[3:5]
    # Seeds are a pure function of (fleet_seed, index): a bigger fleet
    # keeps every earlier UE's seed and profile.
    bigger = ue_specs(_options(n_ues=16))
    assert bigger[: options.n_ues] == full


def test_parked_trajectory_holds_position():
    options = _options()
    scenario = options.scenario.build()
    spec = next(s for s in ue_specs(options) if s.profile == "parked")
    trajectory = trajectory_for(scenario, options, spec)
    p0 = trajectory.position(0)
    for t_ms in (0, 1000, int(options.duration_s * 1000)):
        p = trajectory.position(t_ms)
        assert (p.x, p.y) == (p0.x, p0.y)


# -- bit-parity guarantees ------------------------------------------------


def test_fleet_ue_matches_solo_drive(fleet_results):
    options, results = fleet_results
    scenario = options.scenario.build()
    for spec in ue_specs(options):
        if spec.profile == "parked" and spec.index > 0:
            continue  # one parked probe is enough; movers are the hard case
        solo = DriveSimulator(
            scenario.env,
            scenario.server,
            spec.carrier,
            seed=spec.seed,
            config_lint=False,
        ).run(trajectory_for(scenario, options, spec), make_traffic(options.traffic))
        ue = results[spec.index]
        assert solo.samples == ue.samples, f"UE {spec.index} ({spec.profile})"
        assert solo.handoffs == ue.handoffs
        assert solo.diag_log == ue.diag_log
        assert solo.ping_rtts_ms == ue.ping_rtts_ms


def test_fleet_size_does_not_change_members(fleet_results):
    options, results = fleet_results
    small = _options(n_ues=4)
    small_results = FleetSimulator(small.scenario.build(), small).simulate()
    for k, ue in enumerate(small_results):
        assert ue.samples == results[k].samples
        assert ue.handoffs == results[k].handoffs
        assert ue.diag_sha256 == results[k].diag_sha256


def test_scalar_oracle_matches_batched(fleet_results, monkeypatch):
    options, results = fleet_results
    monkeypatch.setenv("REPRO_SCALAR", "1")
    oracle = FleetSimulator(options.scenario.build(), options).simulate()
    for vec, ref in zip(results, oracle):
        assert vec.samples == ref.samples
        assert vec.handoffs == ref.handoffs
        assert vec.diag_sha256 == ref.diag_sha256
        assert vec.ping_rtts_ms == ref.ping_rtts_ms


def test_worker_count_does_not_change_output():
    options = _options(n_ues=6, duration_s=30.0, keep_samples=False, shard_size=2)
    serial = run_fleet(options, workers=1)
    sharded = run_fleet(options, workers=2)
    assert [u.summary_row() for u in serial.ues] == [
        u.summary_row() for u in sharded.ues
    ]
    assert serial.aggregates.to_dict() == sharded.aggregates.to_dict()


# -- aggregates -----------------------------------------------------------


def _ue(index: int, n_ticks: int, handoffs, delivered=0.0, interrupted=0, occ=None):
    return UEResult(
        index=index,
        profile="vehicle",
        carrier="A",
        seed=index,
        tick_ms=200,
        n_ticks=n_ticks,
        handoffs=handoffs,
        ping_rtts_ms=[],
        diag_sha256="",
        diag_len=0,
        delivered_bits=delivered,
        interrupted_ticks=interrupted,
        occupancy=occ or {},
        intra_freq_rounds=n_ticks,
        non_intra_freq_rounds=n_ticks,
    )


def _handoff(t_ms: int, source: str, target: str) -> HandoffEvent:
    from repro.cellnet.cell import CellId

    return HandoffEvent(
        time_ms=t_ms,
        kind="active",
        source=CellId("A", int(source)),
        target=CellId("A", int(target)),
        decisive_event="A3",
        old_rsrp_dbm=-100.0,
        new_rsrp_dbm=-90.0,
        intra_freq=True,
    )


def test_count_ping_pongs_window():
    events = [
        _handoff(0, "1", "2"),
        _handoff(5_000, "2", "1"),  # A->B->A within 10 s: counts
        _handoff(40_000, "1", "3"),
        _handoff(55_000, "3", "1"),  # 15 s apart: outside the window
    ]
    assert count_ping_pongs(events) == 1


def test_aggregate_rates():
    results = [
        _ue(0, 18_000, [_handoff(0, "1", "2"), _handoff(4_000, "2", "1")],
            delivered=3.6e9, occ={"A/1": 18_000}),
        _ue(1, 18_000, [], interrupted=90, occ={"A/2": 18_000}),
    ]
    agg = aggregate(results, tick_ms=200)
    # 36k ticks x 200 ms = 2 UE-hours; 2 handoffs -> 1.0 per UE-hour.
    assert agg.handoffs_per_ue_hour == pytest.approx(1.0)
    assert agg.ping_pong_count == 1
    assert agg.ping_pong_rate == pytest.approx(0.5)
    # 3.6e9 bits over 7200 s of UE time -> 0.5 Mbit/s mean.
    assert agg.mean_delivered_mbps == pytest.approx(0.5)
    assert agg.interrupted_tick_fraction == pytest.approx(90 / 36_000)
    assert agg.occupancy == {"A/1": 18_000, "A/2": 18_000}
    assert agg.storm_peak == 1


def test_run_aggregates_are_consistent(fleet_results):
    options, results = fleet_results
    agg = aggregate(results, options.tick_ms)
    assert agg.n_ues == options.n_ues
    assert agg.total_ticks == sum(r.n_ticks for r in results)
    # Every tick is served by exactly one cell.
    assert sum(agg.occupancy.values()) == agg.total_ticks
    assert agg.total_handoffs == sum(len(r.handoffs) for r in results)


def test_ue_result_to_drive_result(fleet_results):
    options, results = fleet_results
    ue = results[0]
    drive = ue.to_drive_result()
    assert drive.samples == ue.samples
    assert drive.handoffs == ue.handoffs
    assert drive.diag_log == ue.diag_log


# -- internals the fleet leans on ----------------------------------------


def test_noise_tap_partition_invariance(env):
    # standard_normal hands out elements sequentially from the bit
    # stream, so the buffered tap must serve the exact sequence an
    # unbuffered engine would draw, for any partition into requests.
    engine = MeasurementEngine(env, np.random.default_rng(77))
    unbuffered = np.random.default_rng(77).standard_normal(5000)
    served = [engine._noise(m).copy() for m in (3, 4096, 1, 800, 100)]
    tapped = np.concatenate(served)
    assert tapped.tolist() == unbuffered[: len(tapped)].tolist()


def test_phy_template_matches_codec(lte_cell):
    head, mid, tail, base_sum, length = _phy_template(lte_cell)
    for rsrp, rsrq in ((-97.25, -11.5), (-140.0, -3.0)):
        import struct

        p1 = struct.pack("<d", rsrp)
        p2 = struct.pack("<d", rsrq)
        spliced = b"".join((head, bytes([3]), p1, mid, bytes([3]), p2, tail))
        reference = encode_message(
            PhyServingMeas(
                carrier=lte_cell.carrier,
                gci=lte_cell.cell_id.gci,
                channel=lte_cell.channel,
                rat=lte_cell.rat.value,
                rsrp_dbm=rsrp,
                rsrq_db=rsrq,
                sinr_db=0.0,
                rrc_connected=True,
            )
        )
        assert spliced == reference
        assert len(spliced) == length
        assert (base_sum + sum(p1) + sum(p2)) & 0xFFFF == sum(reference) & 0xFFFF


def test_snapshot_cache_reserve_never_shrinks(env):
    before = env.snapshot_cache_size
    env.reserve_snapshot_capacity(10_000)
    grown = env.snapshot_cache_size
    assert grown >= 2 * 10_000 + 64
    env.reserve_snapshot_capacity(1)
    assert env.snapshot_cache_size == grown


# -- CLI ------------------------------------------------------------------


def test_cli_fleet_reports_deterministically(tmp_path, capsys):
    from repro.cli import main

    args = [
        "fleet", "--ues", "4", "--duration", "20", "--scenario", "lafayette",
        "--seed", "7", "--config-seed", "2018",
    ]
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    assert main(args + ["--out", str(out_a)]) == 0
    assert main(args + ["--workers", "2", "--out", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    report = json.loads(out_a.read_text())
    assert len(report["ues"]) == 4
    assert report["aggregates"]["n_ues"] == 4
    assert report["aggregates"]["total_ticks"] == sum(
        row["n_ticks"] for row in report["ues"]
    )
