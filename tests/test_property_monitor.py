"""Stateful property test: the event monitor's TTT state machine.

Invariants checked against a reference interpretation of TS 36.331:

* no report fires before the entry condition has held continuously for
  the configured time-to-trigger;
* a neighbor in the reported state never re-reports until its leave
  condition has held;
* the monitor never reports the serving cell as an A3 neighbor.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, evaluate_entry, evaluate_leave
from repro.config.lte import MeasurementConfig
from repro.ue.measurement import FilteredMeasurement
from repro.ue.reporting import EventMonitor

_SERVING = Cell(cell_id=CellId("A", 1), rat=RAT.LTE, channel=850, pci=0,
                location=Point(0, 0))
_NEIGHBOR = Cell(cell_id=CellId("A", 2), rat=RAT.LTE, channel=850, pci=0,
                 location=Point(0, 0))

_CONFIG = EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                      time_to_trigger_ms=320)
_TICK_MS = 100


def _fm(cell, rsrp):
    return FilteredMeasurement(cell=cell, rsrp_dbm=rsrp, rsrq_db=-11.0)


class MonitorMachine(RuleBasedStateMachine):
    """Drives the monitor with arbitrary signal paths and checks TTT."""

    @initialize()
    def setup(self):
        self.monitor = EventMonitor(
            MeasurementConfig(events=(_CONFIG,), s_measure=-44.0)
        )
        self.now_ms = 0
        self.entry_since = None  # reference TTT tracker
        self.reported = False

    @rule(
        serving=st.floats(min_value=-130.0, max_value=-60.0),
        neighbor=st.floats(min_value=-130.0, max_value=-60.0),
    )
    def step(self, serving, neighbor):
        self.now_ms += _TICK_MS
        serving_meas = _fm(_SERVING, serving)
        neighbor_meas = _fm(_NEIGHBOR, neighbor)
        entry = evaluate_entry(_CONFIG, serving, neighbor)
        leave = evaluate_leave(_CONFIG, serving, neighbor)
        # Reference model update (mirrors the spec's wording).
        if not self.reported:
            if entry and self.entry_since is None:
                self.entry_since = self.now_ms
            elif leave:
                self.entry_since = None
        reports = self.monitor.step(self.now_ms, serving_meas, [neighbor_meas], [])
        if reports:
            assert not self.reported, "re-reported without leaving"
            assert self.entry_since is not None, "report without entry"
            held = self.now_ms - self.entry_since
            assert held >= _CONFIG.time_to_trigger_ms, f"TTT violated: {held}"
            for report in reports:
                for fired in report.neighbors:
                    assert fired.cell.cell_id != _SERVING.cell_id
            self.reported = True
            self.entry_since = None
        if self.reported and leave:
            self.reported = False

    @invariant()
    def time_monotonic(self):
        assert self.now_ms >= 0


TestMonitorStateMachine = MonitorMachine.TestCase
TestMonitorStateMachine.settings = settings(max_examples=40, stateful_step_count=60)
