"""Tests for the configuration crawler.

The central faithfulness property: what the crawler recovers from the
binary log must equal what the network actually configured.
"""

import numpy as np
import pytest

from repro.cellnet.rat import RAT
from repro.core.crawler import ConfigCrawler, crawl_config_samples
from repro.core.collector import MMLabCollector
from repro.rrc.diag import DiagWriter
from repro.ue.device import UserEquipment


@pytest.fixture(scope="module")
def camped_log(env, server, scenario):
    """A log from camping on a few cells plus one connection."""
    ue = UserEquipment(env, server, "A", seed=19)
    collector = MMLabCollector(mode="type2")
    ue.add_listener(collector)
    cells = [c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.LTE]
    for i, cell in enumerate(cells[:4]):
        ue.camp_on(cell, i * 1000)
    ue.connect(4000)
    return collector.log_bytes(), cells[:4], ue


def test_crawler_recovers_all_cells(camped_log, server):
    log, cells, _ = camped_log
    snapshots = ConfigCrawler.crawl(log)
    assert [s.gci for s in snapshots] == [c.cell_id.gci for c in cells]


def test_crawled_config_matches_broadcast(camped_log, server):
    log, cells, _ = camped_log
    snapshots = ConfigCrawler.crawl(log)
    for snapshot, cell in zip(snapshots, cells):
        truth = server.lte_config(cell)
        assert snapshot.lte_config.serving == truth.serving
        assert snapshot.lte_config.inter_freq_layers == truth.inter_freq_layers
        assert snapshot.lte_config.utra_layers == truth.utra_layers


def test_meas_config_attached_to_last_cell(camped_log, server):
    log, cells, ue = camped_log
    snapshots = ConfigCrawler.crawl(log)
    assert snapshots[-1].meas_config is not None
    assert snapshots[-1].meas_config == ue.monitor.meas_config
    for snapshot in snapshots[:-1]:
        assert snapshot.meas_config is None


def test_config_samples_carry_metadata(camped_log):
    log, cells, _ = camped_log
    samples = crawl_config_samples(log, observed_day=42.0, round_index=3)
    assert samples
    assert all(s.observed_day == 42.0 and s.round_index == 3 for s in samples)
    assert all(s.carrier == "A" for s in samples)


def test_idle_only_episode_has_no_active_samples(camped_log):
    log, cells, _ = camped_log
    samples = crawl_config_samples(log)
    first_cell_samples = [s for s in samples if s.gci == cells[0].cell_id.gci]
    names = {s.parameter for s in first_cell_samples}
    assert "a3_offset" not in names
    assert "s_measure" not in names
    assert "cell_reselection_priority" in names


def test_legacy_cell_crawled(env, server, scenario):
    legacy = next(
        c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.UMTS
    )
    writer = DiagWriter.in_memory()
    for message in server.sib_messages(legacy):
        writer.write(0, message)
    snapshots = ConfigCrawler.crawl(writer.getvalue())
    assert len(snapshots) == 1
    assert snapshots[0].rat == "UMTS"
    assert snapshots[0].legacy_config is not None
    samples = snapshots[0].to_config_samples()
    assert len(samples) == 64  # the UMTS registry size


def test_empty_log():
    assert ConfigCrawler.crawl(b"") == []


def test_incremental_feed_equals_batch(camped_log):
    from repro.rrc.diag import DiagReader

    log, _, _ = camped_log
    crawler = ConfigCrawler()
    for record in DiagReader(log):
        crawler.feed(record)
    incremental = crawler.finish()
    batch = ConfigCrawler.crawl(log)
    assert [s.gci for s in incremental] == [s.gci for s in batch]
