"""Tests for the differential drift analyzer and the HC3xx rules."""

import json

import pytest

from repro.cli import main
from repro.datasets.evolve import EvolveOptions, evolve_timeline
from repro.lint import (
    Baseline,
    ConfigSnapshot,
    Finding,
    diff_config_snapshots,
    diff_lint,
    exit_code,
)
from repro.lint.diff import blame_change, diff_cell, flatten_cell
from repro.lint.report import DIFF_RENDERERS


def _timeline(scenario, steps=2):
    return evolve_timeline(EvolveOptions(scenario=scenario, steps=steps))


@pytest.fixture(scope="module")
def regression():
    tl = _timeline("loop-regression")
    return tl.snapshots[0], tl.snapshots[1]


# -- flattening and the semantic differ ---------------------------------------

def test_flatten_paths_are_qualified_and_unique(regression):
    old, _ = regression
    flat = flatten_cell(old.cells[0])
    assert flat["identity.channel"] == old.cells[0].channel
    assert "serving.cell_reselection_priority" in flat
    assert any(path.startswith("lte-layer[") for path in flat)
    assert any(path.startswith("meas.event[A5/rsrp].") for path in flat)


def test_diff_cell_short_circuits_identical_cells(regression):
    old, _ = regression
    assert diff_cell(old.cells[0], old.cells[0]) == ()


def test_differ_classifies_parameter_and_priority_changes(regression):
    old, new = regression
    changes = diff_config_snapshots(old, new)
    kinds = {c.kind for c in changes}
    assert kinds == {"parameter-changed", "priority-reshuffle"}
    priorities = [c for c in changes if c.kind == "priority-reshuffle"]
    assert all("priority" in c.parameter for c in priorities)
    # Every change carries old/new values and a stable id.
    sample = next(c for c in changes if c.parameter.endswith("thresh_x_high_p"))
    assert sample.old_value == 12.0 and sample.new_value == 0.0
    assert sample.change_id.startswith("parameter-changed:A:")


def test_differ_detects_cell_add_and_retire(regression):
    old, new = regression
    shrunk = ConfigSnapshot.capture(old.cells[:2], label="shrunk")
    changes = diff_config_snapshots(shrunk, old)
    assert [c.kind for c in changes] == ["cell-added"]
    changes = diff_config_snapshots(old, shrunk)
    assert [c.kind for c in changes] == ["cell-retired"]


def test_differ_detects_profile_migration():
    tl = _timeline("patch-rollout")
    changes = diff_config_snapshots(tl.snapshots[0], tl.snapshots[1])
    migrations = [c for c in changes if c.kind == "profile-migration"]
    # Each cell disarms the A5 and arms the A2 patch profile.
    assert len(migrations) == 6
    assert {c.new_value for c in migrations} == {None, "A2/rsrp"}


def test_differ_output_identical_at_any_worker_count(regression):
    old, new = regression
    assert diff_config_snapshots(old, new, workers=1) == \
        diff_config_snapshots(old, new, workers=4)


def test_blame_prefers_same_cell_then_channel_mention(regression):
    old, new = regression
    changes = diff_config_snapshots(old, new)
    cell_finding = Finding(
        code="HC003", severity="info", carrier="A", gci=2, message="m",
        channel=1975,
    )
    culprit = blame_change(cell_finding, changes)
    assert culprit is not None and culprit.gci == 2
    network_finding = Finding(
        code="HC103", severity="problem", carrier="A", gci=-1, message="m",
        subject="850<->1975",
    )
    culprit = blame_change(network_finding, changes)
    assert culprit is not None and culprit.carrier == "A"
    assert blame_change(
        Finding(code="HC001", severity="info", carrier="Z", gci=1, message="m"),
        changes,
    ) is None


# -- diff_lint and the drift rules --------------------------------------------

def test_diff_lint_reports_blamed_hc301_for_loop_regression(regression):
    old, new = regression
    report = diff_lint(old, new)
    hc301 = [f for f in report.findings if f.code == "HC301"]
    assert hc301, "loop regression must produce HC301"
    assert all(f.severity == "problem" for f in hc301)
    # The introduced HC201 graph loop is among the blamed escalations.
    assert any("HC201" in f.subject for f in hc301)
    for finding in hc301:
        assert report.blame.get(finding.fingerprint), "HC301 must be blamed"
    blamed_ids = {c.change_id for c in report.changes}
    assert set(report.blame.values()) <= blamed_ids


def test_diff_lint_gate_excludes_preexisting_findings(regression):
    _, new = regression
    report = diff_lint(new, new)
    assert report.introduced == []
    # Nothing changed, so no drift findings and an empty gate.
    assert report.findings == []
    assert report.changes == ()


def test_diff_lint_reuses_graph_cache_differentially(regression):
    _, new = regression
    report = diff_lint(new, new)
    stats = report.graph_stats
    assert stats is not None
    # Second audit of the identical capture: every component cached.
    assert stats.components_cached == stats.components > 0
    assert stats.components_analyzed == 0


def test_clean_and_patch_rollout_pass_the_gate():
    for scenario in ("clean", "patch-rollout", "retune"):
        tl = _timeline(scenario)
        report = diff_lint(tl.snapshots[0], tl.snapshots[1])
        assert report.findings == [], scenario
        assert exit_code(report.findings, "any") == 0


def _gap_pair(return_threshold):
    """Two cells with the HC104 leave/return geometry: channel 850
    leaves down to 1975 below serving-low 10 dB; 1975 returns to 850
    once it exceeds ``return_threshold``."""
    from repro.config.lte import (
        InterFreqLayerConfig,
        LteCellConfig,
        MeasurementConfig,
        ServingCellConfig,
    )
    from repro.core.crawler import CellConfigSnapshot

    high = CellConfigSnapshot(
        carrier="A", gci=1, rat="LTE", channel=850, city="X",
        first_seen_ms=0,
        lte_config=LteCellConfig(
            serving=ServingCellConfig(
                cell_reselection_priority=5, thresh_serving_low_p=10.0,
            ),
            inter_freq_layers=(InterFreqLayerConfig(
                dl_carrier_freq=1975, cell_reselection_priority=3,
            ),),
            measurement=MeasurementConfig(events=()),
        ),
    )
    low = CellConfigSnapshot(
        carrier="A", gci=2, rat="LTE", channel=1975, city="X",
        first_seen_ms=0,
        lte_config=LteCellConfig(
            serving=ServingCellConfig(cell_reselection_priority=3),
            inter_freq_layers=(InterFreqLayerConfig(
                dl_carrier_freq=850, cell_reselection_priority=5,
                thresh_x_high_p=return_threshold,
            ),),
            measurement=MeasurementConfig(events=()),
        ),
    )
    return ConfigSnapshot.capture([high, low], label=f"ret-{return_threshold:g}")


def test_hc302_threshold_gap_regression():
    """Lowering only the return threshold opens the HC104-style
    leave/return overlap that did not exist before the change."""
    safe = _gap_pair(return_threshold=12.0)   # 12 > 10: no overlap
    opened = _gap_pair(return_threshold=4.0)  # 4 < 10: 6 dB overlap
    report = diff_lint(safe, opened)
    hc302 = [f for f in report.findings if f.code == "HC302"]
    assert len(hc302) == 1
    assert "opened a 6 dB" in hc302[0].message
    assert hc302[0].subject == "850->1975"
    # Widening an existing overlap is also a regression...
    narrow = _gap_pair(return_threshold=8.0)  # 2 dB overlap
    report = diff_lint(narrow, opened)
    hc302 = [f for f in report.findings if f.code == "HC302"]
    assert len(hc302) == 1
    assert "widened the reselection overlap from 2 to 6 dB" in hc302[0].message
    # ...but an unchanged or shrinking overlap is not.
    assert [f for f in diff_lint(opened, opened).findings
            if f.code == "HC302"] == []
    assert [f for f in diff_lint(opened, narrow).findings
            if f.code == "HC302"] == []


def test_hc303_flags_flapping_not_campaigns():
    flap = _timeline("flapping", steps=4)
    report = diff_lint(
        flap.snapshots[-2], flap.snapshots[-1], timeline=flap.snapshots
    )
    hc303 = [f for f in report.findings if f.code == "HC303"]
    assert len(hc303) == 3  # one per cell
    assert all("serving.q_hyst" == f.subject for f in hc303)
    retune = _timeline("retune", steps=4)
    report = diff_lint(
        retune.snapshots[-2], retune.snapshots[-1], timeline=retune.snapshots
    )
    assert [f for f in report.findings if f.code == "HC303"] == []


def test_hc303_needs_a_timeline():
    flap = _timeline("flapping", steps=4)
    report = diff_lint(flap.snapshots[-2], flap.snapshots[-1])
    assert [f for f in report.findings if f.code == "HC303"] == []


def test_hc304_pingpong_window_widened(regression):
    old, new = regression
    report = diff_lint(old, new)
    hc304 = [f for f in report.findings if f.code == "HC304"]
    # The regression swaps A5(-100/-90) (empty window) for A5(-44/-112).
    assert len(hc304) == 3
    assert all(f.subject == "A5/rsrp" for f in hc304)
    assert all("widened from 0 to 66" in f.message for f in hc304)


def test_hc305_stale_suppression(regression):
    good, bad = regression
    # Baseline the misconfigured capture's findings, then diff toward
    # the corrected capture: every suppression stops firing -> HC305.
    baseline = Baseline.from_findings(diff_lint(good, bad).introduced)
    report = diff_lint(bad, good, baseline=baseline)
    hc305 = [f for f in report.findings if f.code == "HC305"]
    assert hc305
    assert all(f.severity == "info" for f in hc305)
    assert all("--prune-baseline" in f.message for f in hc305)
    # The fixed list records what the rollback repaired.
    assert report.fixed


# -- reporters and the shared severity/exit mapping ---------------------------

@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_diff_renderers_carry_blame(regression, fmt):
    old, new = regression
    report = diff_lint(old, new)
    rendered = DIFF_RENDERERS[fmt](report)
    assert "HC301" in rendered
    blamed = next(iter(report.blame.values()))
    assert blamed.split(":")[0] in rendered or "blame" in rendered


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_severity_mapping_consistent_across_formats(regression, fmt):
    """One shared severity table: whatever a format prints, the gate and
    the rendered severities must agree for all three reporters."""
    from repro.lint.findings import SARIF_LEVELS, SEVERITY_RANK

    old, new = regression
    report = diff_lint(old, new)
    severities = {f.severity for f in report.findings}
    rendered = DIFF_RENDERERS[fmt](report)
    if fmt == "sarif":
        payload = json.loads(rendered)
        levels = {r["level"] for r in payload["runs"][0]["results"]}
        assert levels == {SARIF_LEVELS[s] for s in severities}
    elif fmt == "json":
        payload = json.loads(rendered)
        counts = payload["counts_by_severity"]
        for severity in severities:
            assert counts[severity] > 0
    else:
        for severity in severities:
            assert f"[{severity}]" in rendered
    # The exit gate keys off the same table regardless of format.
    assert exit_code(report.findings, "problem") == 1
    assert exit_code(report.findings, "never") == 0
    ranks = sorted(SEVERITY_RANK[s] for s in severities)
    assert ranks == sorted(set(ranks))


def test_exit_code_thresholds():
    warn = Finding(code="HC104", severity="warning", carrier="A", gci=1,
                   message="m")
    info = Finding(code="HC003", severity="info", carrier="A", gci=1,
                   message="m")
    assert exit_code([], "any") == 0
    assert exit_code([info], "any") == 1
    assert exit_code([info], "warning") == 0
    assert exit_code([warn], "warning") == 1
    assert exit_code([warn], "problem") == 0
    assert exit_code([warn, info], "never") == 0
    with pytest.raises(ValueError):
        exit_code([], "sometimes")


# -- CLI ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def timeline_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("timelines")
    for scenario in ("loop-regression", "clean"):
        assert main(["evolve", "--scenario", scenario, "--steps", "2",
                     "--out", str(out / scenario)]) == 0
    return out


def test_cli_diff_catches_regression_and_blames(timeline_dir, capsys):
    paths = sorted(str(p) for p in (timeline_dir / "loop-regression").iterdir())
    assert main(["lint", "--diff", *paths, "--fail-on", "any"]) == 1
    out = capsys.readouterr().out
    assert "HC301" in out and "blame:" in out


def test_cli_diff_clean_change_passes(timeline_dir, capsys):
    paths = sorted(str(p) for p in (timeline_dir / "clean").iterdir())
    assert main(["lint", "--diff", *paths, "--fail-on", "any"]) == 0
    capsys.readouterr()


def test_cli_diff_byte_identical_across_workers(timeline_dir, capsys):
    paths = sorted(str(p) for p in (timeline_dir / "loop-regression").iterdir())
    outputs = []
    for workers in ("1", "4"):
        main(["lint", "--diff", *paths, "--workers", workers,
              "--format", "json"])
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_cli_diff_needs_two_snapshots(timeline_dir, capsys):
    paths = sorted(str(p) for p in (timeline_dir / "clean").iterdir())
    assert main(["lint", "--diff", paths[0]]) == 2
    assert "at least two" in capsys.readouterr().err


def test_cli_diff_rejects_bad_snapshot_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99}")
    assert main(["lint", "--diff", str(bad), str(bad)]) == 2
    assert "unsupported snapshot version" in capsys.readouterr().err


def test_cli_snapshot_roundtrip(tmp_path, capsys):
    out = tmp_path / "cap.json"
    assert main(["snapshot", "--city", "loop-fixture", "--out", str(out),
                 "--label", "fixture"]) == 0
    err = capsys.readouterr().err
    assert "3 cells" in err
    snapshot = ConfigSnapshot.load(out)
    assert snapshot.label == "fixture" and len(snapshot) == 3
