"""Tests for cells and the cell registry."""

import pytest

from repro.cellnet.cell import Cell, CellId, CellRegistry
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT


def _cell(gci=1, carrier="A", rat=RAT.LTE, channel=850, x=0.0, y=0.0, city="X"):
    return Cell(
        cell_id=CellId(carrier, gci),
        rat=rat,
        channel=channel,
        pci=gci % 504,
        location=Point(x, y),
        city=city,
    )


def test_cell_id_ordering_and_str():
    assert CellId("A", 1) < CellId("A", 2) < CellId("B", 1)
    assert str(CellId("A", 7)) == "A/7"


def test_frequency_and_band_from_catalog():
    cell = _cell(channel=9820)
    assert cell.band_number == 30
    assert cell.frequency_mhz == pytest.approx(2355.0)


def test_intra_frequency_classification():
    a = _cell(gci=1, channel=850)
    b = _cell(gci=2, channel=850)
    c = _cell(gci=3, channel=5780)
    d = _cell(gci=4, rat=RAT.UMTS, channel=4385)
    assert a.is_intra_frequency(b)
    assert not a.is_intra_frequency(c)
    assert not a.is_intra_frequency(d)
    assert a.is_inter_rat(d)
    assert not a.is_inter_rat(c)


def test_registry_add_and_lookup():
    registry = CellRegistry()
    cell = _cell()
    registry.add(cell)
    assert registry.get(cell.cell_id) is cell
    assert cell.cell_id in registry
    assert len(registry) == 1


def test_registry_rejects_duplicates():
    registry = CellRegistry()
    registry.add(_cell())
    with pytest.raises(ValueError, match="duplicate"):
        registry.add(_cell())


def test_registry_filters():
    registry = CellRegistry()
    registry.add(_cell(gci=1, carrier="A", city="X"))
    registry.add(_cell(gci=2, carrier="A", city="Y", rat=RAT.UMTS, channel=4385))
    registry.add(_cell(gci=1, carrier="T", city="X", channel=5035))
    assert len(registry.by_carrier("A")) == 2
    assert len(registry.by_city("X")) == 2
    assert len(registry.by_rat(RAT.UMTS)) == 1


def test_registry_deterministic_order():
    registry = CellRegistry()
    registry.add(_cell(gci=2))
    registry.add(_cell(gci=1))
    assert [c.cell_id.gci for c in registry.all_cells()] == [1, 2]


def test_neighbors_of_same_carrier_only():
    registry = CellRegistry()
    center = _cell(gci=1, carrier="A", x=0.0)
    registry.add(center)
    registry.add(_cell(gci=2, carrier="A", x=500.0))
    registry.add(_cell(gci=3, carrier="A", x=5000.0))
    registry.add(_cell(gci=1, carrier="T", x=100.0, channel=5035))
    neighbors = registry.neighbors_of(center, radius_m=1000.0)
    assert [n.cell_id.gci for n in neighbors] == [2]
