"""Tests for the UE measurement engine."""

import numpy as np
import pytest

from repro.cellnet.rat import RAT
from repro.ue.measurement import MeasurementEngine


@pytest.fixture(params=[True, False], ids=["vectorized", "scalar"])
def engine(request, env):
    return MeasurementEngine(env, np.random.default_rng(5), vectorized=request.param)


@pytest.fixture
def serving(env, scenario):
    origin = scenario.cities[0].origin
    return env.strongest_cell(origin, "A", rat=RAT.LTE)


def test_step_measures_serving(engine, serving, scenario):
    origin = scenario.cities[0].origin
    measured = engine.step(origin, "A", serving)
    assert serving.cell_id in measured
    assert measured[serving.cell_id].cell is serving


def test_filter_converges_to_mean(env, serving, scenario):
    """The L3 filter should average out measurement noise over steps."""
    origin = scenario.cities[0].origin
    engine = MeasurementEngine(env, np.random.default_rng(5), noise_std_db=3.0)
    truth = env.snapshot(origin, "A").rsrp(serving)
    for _ in range(30):
        measured = engine.step(origin, "A", serving)
    filtered = measured[serving.cell_id].rsrp_dbm
    assert abs(filtered - truth) < 2.5


def test_gating_skips_neighbors(engine, serving, scenario):
    origin = scenario.cities[0].origin
    measured = engine.step(
        origin, "A", serving, measure_intra=False, measure_non_intra=False
    )
    assert list(measured) == [serving.cell_id]


def test_gating_intra_only(engine, serving, scenario):
    origin = scenario.cities[0].origin
    measured = engine.step(
        origin, "A", serving, measure_intra=True, measure_non_intra=False
    )
    for cid, fm in measured.items():
        if cid == serving.cell_id:
            continue
        assert fm.cell.rat is serving.rat
        assert fm.cell.channel == serving.channel


def test_round_counters(engine, serving, scenario):
    origin = scenario.cities[0].origin
    engine.step(origin, "A", serving)
    engine.step(origin, "A", serving, measure_non_intra=False)
    assert engine.intra_freq_rounds == 2
    assert engine.non_intra_freq_rounds == 1


def test_detection_floor_excludes_weak_neighbors(env, serving, scenario):
    origin = scenario.cities[0].origin
    engine = MeasurementEngine(
        env, np.random.default_rng(5), detection_floor_dbm=-90.0
    )
    measured = engine.step(origin, "A", serving)
    snap = env.snapshot(origin, "A")
    for cid, fm in measured.items():
        if cid != serving.cell_id:
            assert snap.rsrp(fm.cell) >= -90.0


def test_reset_clears_filter_state(engine, serving, scenario):
    origin = scenario.cities[0].origin
    engine.step(origin, "A", serving)
    engine.reset()
    if engine.vectorized:
        assert not engine._has_filt.any()
    else:
        assert engine._filtered == {}


def test_split_neighbors(engine, serving, scenario):
    origin = scenario.cities[0].origin
    measured = engine.step(origin, "A", serving)
    intra_rat, inter_rat = engine.split_neighbors(measured, serving)
    assert all(m.cell.rat is RAT.LTE for m in intra_rat)
    assert all(m.cell.rat is not RAT.LTE for m in inter_rat)
    assert serving.cell_id not in {m.cell.cell_id for m in intra_rat}
    rsrps = [m.rsrp_dbm for m in intra_rat]
    assert rsrps == sorted(rsrps, reverse=True)


def test_metric_accessor(engine, serving, scenario):
    origin = scenario.cities[0].origin
    fm = engine.step(origin, "A", serving)[serving.cell_id]
    assert fm.metric("rsrp") == fm.rsrp_dbm
    assert fm.metric("rsrq") == fm.rsrq_db
    with pytest.raises(ValueError):
        fm.metric("bogus")
