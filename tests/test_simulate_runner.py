"""Tests for the drive simulator."""

import numpy as np
import pytest

from repro.rrc.diag import DiagReader
from repro.simulate.runner import DriveSimulator
from repro.simulate.traffic import NoTraffic, Ping, Speedtest


@pytest.fixture(scope="module")
def short_drive(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=5)
    rng = np.random.default_rng(21)
    trajectory = scenario.urban_trajectory(rng, duration_s=240.0)
    return sim.run(trajectory, Speedtest())


def test_samples_cover_trajectory(short_drive):
    assert short_drive.samples
    assert short_drive.samples[0].t_ms == 0
    gaps = {
        b.t_ms - a.t_ms
        for a, b in zip(short_drive.samples, short_drive.samples[1:])
    }
    assert gaps == {short_drive.tick_ms}


def test_diag_log_parses(short_drive):
    records = DiagReader(short_drive.diag_log).records()
    assert records
    timestamps = [r.timestamp_ms for r in records]
    assert timestamps == sorted(timestamps)


def test_throughput_nonnegative(short_drive):
    assert all(s.delivered_bps >= 0 for s in short_drive.samples)
    assert any(s.delivered_bps > 0 for s in short_drive.samples)


def test_interrupted_ticks_deliver_nothing(short_drive):
    for sample in short_drive.samples:
        if sample.interrupted:
            assert sample.capacity_bps == 0.0


def test_throughput_series_binning(short_drive):
    series = short_drive.throughput_series(bin_ms=1000)
    assert series
    starts = [start for start, _ in series]
    assert starts == sorted(starts)
    assert all(start % 1000 == 0 for start in starts)


def test_throughput_series_matches_naive_binning(short_drive):
    """The single-pass accumulator equals the per-bin-list reference."""
    bin_ms = 1000
    naive: dict[int, list[float]] = {}
    for sample in short_drive.samples:
        naive.setdefault(sample.t_ms // bin_ms * bin_ms, []).append(sample.delivered_bps)
    expected = [
        (start, sum(values) / len(values)) for start, values in sorted(naive.items())
    ]
    assert short_drive.throughput_series(bin_ms=bin_ms) == expected


def test_deterministic_rerun(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=5)
    rng1 = np.random.default_rng(33)
    rng2 = np.random.default_rng(33)
    t1 = scenario.urban_trajectory(rng1, duration_s=120.0)
    t2 = scenario.urban_trajectory(rng2, duration_s=120.0)
    r1 = sim.run(t1, Speedtest(), run_index=3)
    r2 = sim.run(t2, Speedtest(), run_index=3)
    assert r1.diag_log == r2.diag_log
    assert [s.delivered_bps for s in r1.samples] == [s.delivered_bps for s in r2.samples]


def test_idle_run_stays_idle(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=5)
    rng = np.random.default_rng(41)
    trajectory = scenario.urban_trajectory(rng, duration_s=180.0)
    result = sim.run(trajectory, NoTraffic(), run_index=8)
    assert all(h.kind == "idle" for h in result.handoffs)
    assert all(s.delivered_bps == 0.0 for s in result.samples)


def test_ping_run_collects_rtts(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=5)
    rng = np.random.default_rng(55)
    trajectory = scenario.urban_trajectory(rng, duration_s=120.0)
    result = sim.run(trajectory, Ping(interval_s=5.0), run_index=9)
    assert len(result.ping_rtts_ms) >= 20
    delivered = [rtt for _, rtt in result.ping_rtts_ms if rtt is not None]
    assert delivered and all(rtt > 0 for rtt in delivered)
