"""Tests for handoff-instance extraction against simulator ground truth."""

import numpy as np
import pytest

from repro.core.handoffs import extract_handoff_instances
from repro.simulate.runner import DriveSimulator
from repro.simulate.traffic import NoTraffic, Speedtest


@pytest.fixture(scope="module")
def active_drive(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=23)
    rng = np.random.default_rng(61)
    trajectory = scenario.urban_trajectory(rng, duration_s=420.0)
    return sim.run(trajectory, Speedtest())


@pytest.fixture(scope="module")
def idle_drive(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=23)
    rng = np.random.default_rng(61)
    trajectory = scenario.urban_trajectory(rng, duration_s=420.0)
    return sim.run(trajectory, NoTraffic(), run_index=77)


def test_extraction_matches_ground_truth_count(active_drive, scenario):
    from repro.cellnet.rat import RAT

    instances = extract_handoff_instances(active_drive.diag_log, "A")
    truth = [
        h for h in active_drive.handoffs
        if scenario.env.get_cell(h.source).rat is RAT.LTE
        and scenario.env.get_cell(h.target).rat is RAT.LTE
    ]
    assert len(instances) == len(truth)


def test_extraction_matches_decisive_events(active_drive, scenario):
    instances = extract_handoff_instances(active_drive.diag_log, "A")
    truth = active_drive.handoffs
    extracted = [(i.source_gci, i.target_gci, i.decisive_event) for i in instances]
    expected = [
        (h.source.gci, h.target.gci, h.decisive_event)
        for h in truth
        if h.kind == "active"
    ]
    assert extracted == expected


def test_decisive_config_extracted(active_drive):
    instances = extract_handoff_instances(active_drive.diag_log, "A")
    a3 = [i for i in instances if i.decisive_event == "A3"]
    assert a3
    for instance in a3:
        assert "offset" in instance.decisive_config
        assert "hysteresis" in instance.decisive_config


def test_latency_within_decision_band(active_drive):
    instances = extract_handoff_instances(active_drive.diag_log, "A")
    latencies = [i.report_to_handover_ms for i in instances
                 if i.report_to_handover_ms is not None]
    assert latencies
    assert all(80 <= latency <= 230 for latency in latencies)


def test_radio_before_after_filled(active_drive):
    instances = extract_handoff_instances(active_drive.diag_log, "A")
    filled = [i for i in instances if i.rsrp_before is not None]
    assert len(filled) == len(instances)
    with_after = [i for i in instances if i.rsrp_after is not None]
    assert len(with_after) >= len(instances) - 1  # trace may end early


def test_throughput_alignment(active_drive):
    series = active_drive.throughput_series(bin_ms=1000)
    instances = extract_handoff_instances(
        active_drive.diag_log, "A", throughput_series=series
    )
    with_throughput = [i for i in instances if i.min_throughput_before_bps is not None]
    assert with_throughput


def test_idle_extraction(idle_drive, scenario):
    from repro.cellnet.rat import RAT

    instances = extract_handoff_instances(idle_drive.diag_log, "A")
    assert instances
    assert all(i.kind == "idle" for i in instances)
    truth = [
        h for h in idle_drive.handoffs
        if scenario.env.get_cell(h.source).rat is RAT.LTE
        and scenario.env.get_cell(h.target).rat is RAT.LTE
    ]
    assert len(instances) == len(truth)
    extracted_classes = [i.priority_class for i in instances]
    expected_classes = [h.priority_class for h in truth]
    assert extracted_classes == expected_classes


def test_lte_only_filter(idle_drive):
    everything = extract_handoff_instances(idle_drive.diag_log, "A", lte_only=False)
    lte_only = extract_handoff_instances(idle_drive.diag_log, "A", lte_only=True)
    assert len(everything) >= len(lte_only)


def test_empty_log():
    assert extract_handoff_instances(b"", "A") == []
