"""Tests for the MMLab facade."""

import numpy as np

from repro.core import MMLab
from repro.core.collector import MMLabCollector
from repro.simulate.runner import DriveSimulator
from repro.simulate.traffic import Speedtest


def test_attach_registers_collector(env, server, scenario):
    from repro.ue.device import UserEquipment

    mmlab = MMLab()
    ue = UserEquipment(env, server, "A", seed=2)
    collector = mmlab.attach(ue, mode="type1")
    assert isinstance(collector, MMLabCollector)
    ue.initial_camp(scenario.cities[0].origin)
    assert collector.messages_logged > 0


def test_facade_methods_agree_with_modules(scenario):
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=37)
    trajectory = scenario.urban_trajectory(np.random.default_rng(81), duration_s=180.0)
    result = sim.run(trajectory, Speedtest())
    mmlab = MMLab()
    snapshots = mmlab.crawl(result.diag_log)
    samples = mmlab.crawl_samples(result.diag_log, observed_day=1.0, round_index=2)
    instances = mmlab.extract_handoffs(result.diag_log, "A")
    assert snapshots
    assert {s.gci for s in samples} == {s.gci for s in snapshots}
    assert all(s.round_index == 2 for s in samples)
    for instance in instances:
        assert instance.carrier == "A"
