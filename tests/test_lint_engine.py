"""Tests for the lint engine, baseline files, reporters and CLI."""

import json
import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.config.events import EventConfig, EventType
from repro.config.lte import LteCellConfig, MeasurementConfig, ServingCellConfig
from repro.core.crawler import CellConfigSnapshot
from repro.lint import (
    Baseline,
    ConfigLintWarning,
    Finding,
    lint_snapshots,
    lint_world,
    render_json,
    render_sarif,
    render_text,
    warn_before_run,
    world_snapshots,
)
from repro.lint.report import SARIF_LEVELS, SARIF_VERSION
from repro.rrc.broadcast import ConfigServer


def _bad_snapshot(gci=1, channel=850):
    """A snapshot tripping several cell rules at once."""
    meas = MeasurementConfig(events=(
        EventConfig(event=EventType.A3, offset=-1.0, hysteresis=1.0),
        EventConfig(event=EventType.A5, threshold1=-44.0, threshold2=-114.0),
    ))
    config = LteCellConfig(
        serving=ServingCellConfig(
            s_intra_search_p=62.0, s_non_intra_search_p=8.0,
            thresh_serving_low_p=6.0,
        ),
        measurement=meas,
    )
    return CellConfigSnapshot(
        carrier="A", gci=gci, rat="LTE", channel=channel, city="X",
        first_seen_ms=0, lte_config=config, meas_config=meas,
    )


def test_report_counts_and_flags():
    report = lint_snapshots([_bad_snapshot()])
    assert report.snapshots_audited == 1
    assert len(report.rules_run) >= 16
    counts = report.counts_by_code()
    assert counts["HC002"] == 1 and counts["HC003"] == 1
    assert report.has_problems  # the guaranteed A3 ping-pong (HC009)
    assert report.has_warnings
    severities = report.counts_by_severity()
    assert sum(severities.values()) == len(report.findings)


def test_findings_sorted_deterministically():
    snapshots = [_bad_snapshot(gci=2), _bad_snapshot(gci=1)]
    first = lint_snapshots(snapshots).findings
    second = lint_snapshots(list(reversed(snapshots))).findings
    assert first == second


def test_baseline_roundtrip(tmp_path):
    report = lint_snapshots([_bad_snapshot()])
    baseline = Baseline.from_findings(report.findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == len(report.findings)
    suppressed_run = lint_snapshots([_bad_snapshot()], baseline=reloaded)
    assert suppressed_run.findings == []
    assert len(suppressed_run.suppressed) == len(report.findings)
    assert reloaded.unused(suppressed_run.suppressed) == set()


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "suppressions": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_baseline_from_findings_roundtrip_with_duplicate_fingerprints(tmp_path):
    """Two findings sharing a fingerprint (same code/cell/subject,
    different message) collapse into one suppression; the first message
    wins as the exemplar and the file round-trips losslessly."""
    first = lint_snapshots([_bad_snapshot()]).findings[0]
    import dataclasses

    reworded = dataclasses.replace(first, message="same defect, new words")
    assert first.fingerprint == reworded.fingerprint
    baseline = Baseline.from_findings([first, reworded, first])
    assert len(baseline) == 1
    assert baseline.messages[first.fingerprint] == first.message
    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert reloaded.fingerprints == baseline.fingerprints
    assert reloaded.messages == baseline.messages
    assert reloaded.split([first, reworded]) == ([], [first, reworded])


def test_baseline_prune_drops_only_stale_entries():
    report = lint_snapshots([_bad_snapshot()])
    baseline = Baseline.from_findings(report.findings)
    ghost = Finding(code="HC001", severity="info", carrier="Z", gci=99,
                    message="long gone")
    baseline.fingerprints.add(ghost.fingerprint)
    baseline.messages[ghost.fingerprint] = ghost.message
    baseline.codes["HC001"] = "ghost-rule"
    pruned = baseline.prune(report.findings)
    assert pruned == {ghost.fingerprint}
    assert ghost.fingerprint not in baseline.messages
    assert "HC001" not in baseline.codes  # legend follows the survivors
    assert baseline.unused(report.findings) == set()
    # Idempotent on an already-clean baseline.
    assert baseline.prune(report.findings) == set()


def test_prune_scoped_to_rules_run_spares_unexecuted_rules():
    """A graph-rule suppression must survive a non-graph audit's prune:
    the audit never ran HC201, so it cannot call the entry stale."""
    report = lint_snapshots([_bad_snapshot()])
    baseline = Baseline.from_findings(report.findings)
    graph_fp = "HC201:A:1:850:layer-cycle"
    baseline.fingerprints.add(graph_fp)
    baseline.codes["HC201"] = "k-cell-loop-active"
    assert graph_fp in baseline.unused(report.findings)  # unscoped: stale
    scoped = baseline.unused(report.findings, rules_run=report.rules_run)
    assert graph_fp not in scoped
    assert baseline.prune(report.findings, rules_run=report.rules_run) == set()
    assert graph_fp in baseline.fingerprints
    assert "HC201" in baseline.codes


def test_cli_lint_prune_baseline(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--write-baseline", str(baseline_path)]) == 0
    capsys.readouterr()
    stale = Baseline.load(baseline_path)
    stale.fingerprints.add("HC001:Z:99:-1:")
    stale.save(baseline_path)
    # Without --prune-baseline the stale entry is surfaced, not dropped.
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--baseline", str(baseline_path)]) == 0
    err = capsys.readouterr().err
    assert "no longer match" in err and "--prune-baseline" in err
    assert "HC001:Z:99:-1:" in Baseline.load(baseline_path).fingerprints
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--baseline", str(baseline_path), "--prune-baseline"]) == 0
    err = capsys.readouterr().err
    assert "pruned 1 stale suppression" in err
    assert "HC001:Z:99:-1:" not in Baseline.load(baseline_path).fingerprints
    # A clean baseline prunes nothing and stays quiet.
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--baseline", str(baseline_path), "--prune-baseline"]) == 0
    assert "pruned" not in capsys.readouterr().err


def test_baseline_survives_message_rewording():
    report = lint_snapshots([_bad_snapshot()])
    baseline = Baseline.from_findings(report.findings)
    reworded = [
        type(f)(code=f.code, severity=f.severity, carrier=f.carrier, gci=f.gci,
                message="totally new wording", name=f.name, channel=f.channel,
                subject=f.subject)
        for f in report.findings
    ]
    new, suppressed = baseline.split(reworded)
    assert new == [] and len(suppressed) == len(reworded)


def test_json_report_shape():
    report = lint_snapshots([_bad_snapshot()])
    payload = json.loads(render_json(report))
    assert payload["version"] == 1
    assert payload["tool"] == "repro.lint"
    assert payload["snapshots_audited"] == 1
    assert set(payload["counts_by_code"]) == {f["code"] for f in payload["findings"]}
    for finding in payload["findings"]:
        assert finding["fingerprint"].startswith(finding["code"] + ":")
        assert finding["severity"] in ("info", "warning", "problem")


def test_sarif_report_shape():
    report = lint_snapshots([_bad_snapshot()])
    sarif = json.loads(render_sarif(report))
    assert sarif["version"] == SARIF_VERSION
    assert "sarif-schema-2.1.0" in sarif["$schema"]
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    for rule_entry in driver["rules"]:
        assert rule_entry["shortDescription"]["text"]
        assert rule_entry["defaultConfiguration"]["level"] in SARIF_LEVELS.values()
    assert run["results"]
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] in SARIF_LEVELS.values()
        assert result["message"]["text"]
        (location,) = result["locations"]
        assert location["logicalLocations"][0]["name"]
        assert result["partialFingerprints"]["reproLint/v1"]


def test_text_report_mentions_codes():
    report = lint_snapshots([_bad_snapshot()])
    text = render_text(report)
    assert "HC002" in text and "a3-negative-offset" in text
    verbose = render_text(report, verbose=True)
    assert verbose.count("HC00") >= text.count("HC00")


def test_world_snapshots_sampling(env, server):
    sampled = world_snapshots(env, server, carriers=("A",), max_cells_per_carrier=5)
    assert len(sampled) == 5
    again = world_snapshots(env, server, carriers=("A",), max_cells_per_carrier=5)
    assert [s.gci for s in sampled] == [s.gci for s in again]


def test_lint_world_finds_paper_misconfigurations(env, server):
    report = lint_world(env, server)
    assert report.snapshots_audited > 100
    assert len(report.counts_by_code()) >= 8


def test_committed_baseline_covers_default_fleet():
    """The repo's lint-baseline.json documents every intentional finding

    of the default world fleet (the paper-replicated misconfigurations),
    so a default audit against it reports nothing new.
    """
    from pathlib import Path

    from repro.cellnet.deployment import build_world_deployment
    from repro.cellnet.world import RadioEnvironment

    plan = build_world_deployment(seed=7)
    env = RadioEnvironment(plan)
    server = ConfigServer(env, seed=2018)
    baseline_path = Path(__file__).resolve().parents[1] / "lint-baseline.json"
    baseline = Baseline.load(baseline_path)
    report = lint_world(
        env,
        server,
        max_cells_per_carrier=60,
        baseline=baseline,
        graph=True,
        coverage=True,
    )
    assert report.findings == []
    assert len(report.suppressed) == len(baseline)
    assert baseline.unused(report.suppressed) == set()


def test_preflight_warns_once(env):
    fresh_server = ConfigServer(env, seed=2018)
    with pytest.warns(ConfigLintWarning, match="carrier 'A'"):
        first = warn_before_run(env, fresh_server, "A")
    assert first.findings
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        second = warn_before_run(env, fresh_server, "A")
    assert second is first


def test_simulator_preflight_toggle(scenario):
    from repro.simulate.runner import DriveSimulator
    from repro.simulate.traffic import NoTraffic

    rng = np.random.default_rng(3)
    trajectory = scenario.urban_trajectory(rng, duration_s=10.0)
    quiet_server = ConfigServer(scenario.env, seed=2018)
    sim = DriveSimulator(scenario.env, quiet_server, "A", config_lint=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error", ConfigLintWarning)
        sim.run(trajectory, NoTraffic())
    loud_server = ConfigServer(scenario.env, seed=2018)
    loud = DriveSimulator(scenario.env, loud_server, "A")
    with pytest.warns(ConfigLintWarning):
        loud.run(trajectory, NoTraffic())


def test_cli_lint_json(capsys):
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro.lint"
    assert payload["snapshots_audited"] > 0
    assert len(payload["rules_run"]) >= 16


def test_cli_lint_sarif(capsys):
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--format", "sarif"]) == 0
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == SARIF_VERSION


def test_cli_lint_baseline_roundtrip(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--write-baseline", str(baseline_path)]) == 0
    capsys.readouterr()
    assert baseline_path.exists()
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--baseline", str(baseline_path), "--fail-on", "warning"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_lint_fail_on(capsys):
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--fail-on", "warning"]) == 1
    capsys.readouterr()


def test_cli_lint_rule_filter(capsys):
    assert main(["lint", "--city", "Lafayette", "--max-cells", "3",
                 "--rules", "HC006", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["HC006"]
    assert set(payload["counts_by_code"]) <= {"HC006"}


def test_cli_lint_unknown_city(capsys):
    assert main(["lint", "--city", "Atlantis"]) == 2
    assert "unknown city" in capsys.readouterr().err


def test_cli_lint_unknown_rule_code(capsys):
    assert main(["lint", "--city", "Lafayette", "--max-cells", "2",
                 "--rules", "HC999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err
