"""Tests for the dataset stores."""

import pytest

from repro.datasets.records import ConfigSample, HandoffInstance
from repro.datasets.store import ConfigSampleStore, HandoffInstanceStore


def _sample(carrier="A", gci=1, parameter="q_hyst", value=4.0, city="X",
            rat="LTE", day=0.0, round_index=0):
    return ConfigSample(
        carrier=carrier, gci=gci, rat=rat, channel=850, city=city,
        parameter=parameter, value=value, observed_day=day,
        round_index=round_index,
    )


def test_filters_chain():
    store = ConfigSampleStore([
        _sample(carrier="A", gci=1),
        _sample(carrier="A", gci=2, parameter="p_max", value=23),
        _sample(carrier="T", gci=1),
    ])
    assert len(store.for_carrier("A")) == 2
    assert len(store.for_carrier("A").for_parameter("q_hyst")) == 1
    assert len(store.for_rat("LTE")) == 3
    assert len(store.for_city("X")) == 3


def test_unique_cells():
    store = ConfigSampleStore([
        _sample(carrier="A", gci=1), _sample(carrier="A", gci=1),
        _sample(carrier="T", gci=1),
    ])
    assert store.unique_cells() == {("A", 1), ("T", 1)}


def test_unique_values_deduplicates_per_cell():
    """The paper's unique-sample convention (Section 5.1)."""
    store = ConfigSampleStore([
        _sample(gci=1, value=4.0, day=0.0),
        _sample(gci=1, value=4.0, day=100.0),  # same cell, same value
        _sample(gci=1, value=2.0, day=200.0),  # same cell, new value
        _sample(gci=2, value=4.0),
    ])
    values = store.unique_values("q_hyst")
    assert sorted(values) == [2.0, 4.0, 4.0]
    raw = store.unique_values("q_hyst", deduplicate_cells=False)
    assert len(raw) == 4


def test_group_by():
    store = ConfigSampleStore([
        _sample(city="X"), _sample(city="Y", gci=2), _sample(city="X", gci=3),
    ])
    groups = store.group_by(lambda s: s.city)
    assert set(groups) == {"X", "Y"}
    assert len(groups["X"]) == 2


def test_samples_per_cell():
    store = ConfigSampleStore([
        _sample(gci=1), _sample(gci=1, day=10.0), _sample(gci=2),
    ])
    assert store.samples_per_cell("q_hyst") == {("A", 1): 2, ("A", 2): 1}


def test_config_store_save_load(tmp_path):
    store = ConfigSampleStore([_sample(), _sample(gci=2, value=[1, 2], parameter="x")])
    path = tmp_path / "d2.jsonl"
    store.save(path)
    loaded = ConfigSampleStore.load(path)
    assert len(loaded) == 2
    assert loaded.unique_cells() == store.unique_cells()


def _instance(kind="active", carrier="A", event="A3", t=0):
    return HandoffInstance(
        kind=kind, carrier=carrier, time_ms=t, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850, intra_freq=True,
        decisive_event=event if kind == "active" else None,
    )


def test_handoff_store_filters():
    store = HandoffInstanceStore([
        _instance(), _instance(kind="idle"), _instance(carrier="T", event="A5"),
    ])
    assert len(store.active()) == 2
    assert len(store.idle()) == 1
    assert len(store.for_carrier("A").active()) == 1
    assert len(store.for_event("A5")) == 1


def test_handoff_store_save_load(tmp_path):
    store = HandoffInstanceStore([_instance(), _instance(kind="idle", t=5)])
    path = tmp_path / "d1.jsonl"
    store.save(path)
    loaded = HandoffInstanceStore.load(path)
    assert len(loaded) == 2
    assert len(loaded.idle()) == 1
