"""Tests for the dataset stores."""

import pytest

from repro.datasets.records import ConfigSample, HandoffInstance
from repro.datasets.store import ConfigSampleStore, HandoffInstanceStore


def _sample(carrier="A", gci=1, parameter="q_hyst", value=4.0, city="X",
            rat="LTE", day=0.0, round_index=0):
    return ConfigSample(
        carrier=carrier, gci=gci, rat=rat, channel=850, city=city,
        parameter=parameter, value=value, observed_day=day,
        round_index=round_index,
    )


def test_filters_chain():
    store = ConfigSampleStore([
        _sample(carrier="A", gci=1),
        _sample(carrier="A", gci=2, parameter="p_max", value=23),
        _sample(carrier="T", gci=1),
    ])
    assert len(store.for_carrier("A")) == 2
    assert len(store.for_carrier("A").for_parameter("q_hyst")) == 1
    assert len(store.for_rat("LTE")) == 3
    assert len(store.for_city("X")) == 3


def test_unique_cells():
    store = ConfigSampleStore([
        _sample(carrier="A", gci=1), _sample(carrier="A", gci=1),
        _sample(carrier="T", gci=1),
    ])
    assert store.unique_cells() == {("A", 1), ("T", 1)}


def test_unique_values_deduplicates_per_cell():
    """The paper's unique-sample convention (Section 5.1)."""
    store = ConfigSampleStore([
        _sample(gci=1, value=4.0, day=0.0),
        _sample(gci=1, value=4.0, day=100.0),  # same cell, same value
        _sample(gci=1, value=2.0, day=200.0),  # same cell, new value
        _sample(gci=2, value=4.0),
    ])
    values = store.unique_values("q_hyst")
    assert sorted(values) == [2.0, 4.0, 4.0]
    raw = store.unique_values("q_hyst", deduplicate_cells=False)
    assert len(raw) == 4


def test_group_by():
    store = ConfigSampleStore([
        _sample(city="X"), _sample(city="Y", gci=2), _sample(city="X", gci=3),
    ])
    groups = store.group_by(lambda s: s.city)
    assert set(groups) == {"X", "Y"}
    assert len(groups["X"]) == 2


def test_samples_per_cell():
    store = ConfigSampleStore([
        _sample(gci=1), _sample(gci=1, day=10.0), _sample(gci=2),
    ])
    assert store.samples_per_cell("q_hyst") == {("A", 1): 2, ("A", 2): 1}


def test_config_store_save_load(tmp_path):
    store = ConfigSampleStore([_sample(), _sample(gci=2, value=[1, 2], parameter="x")])
    path = tmp_path / "d2.jsonl"
    store.save(path)
    loaded = ConfigSampleStore.load(path)
    assert len(loaded) == 2
    assert loaded.unique_cells() == store.unique_cells()


def _instance(kind="active", carrier="A", event="A3", t=0):
    return HandoffInstance(
        kind=kind, carrier=carrier, time_ms=t, source_gci=1, target_gci=2,
        source_channel=850, target_channel=850, intra_freq=True,
        decisive_event=event if kind == "active" else None,
    )


def test_handoff_store_filters():
    store = HandoffInstanceStore([
        _instance(), _instance(kind="idle"), _instance(carrier="T", event="A5"),
    ])
    assert len(store.active()) == 2
    assert len(store.idle()) == 1
    assert len(store.for_carrier("A").active()) == 1
    assert len(store.for_event("A5")) == 1


def test_handoff_store_save_load(tmp_path):
    store = HandoffInstanceStore([_instance(), _instance(kind="idle", t=5)])
    path = tmp_path / "d1.jsonl"
    store.save(path)
    loaded = HandoffInstanceStore.load(path)
    assert len(loaded) == 2
    assert len(loaded.idle()) == 1


# -- atomic persistence -------------------------------------------------------

@pytest.mark.parametrize("store_cls,record", [
    (ConfigSampleStore, _sample()),
    (HandoffInstanceStore, _instance()),
])
def test_save_load_roundtrip_including_empty(tmp_path, store_cls, record):
    empty_path = tmp_path / "empty.jsonl"
    store_cls().save(empty_path)
    assert empty_path.exists()
    assert len(store_cls.load(empty_path)) == 0
    full_path = tmp_path / "full.jsonl"
    store = store_cls([record])
    store.save(full_path)
    loaded = store_cls.load(full_path)
    assert [r.to_json() for r in loaded] == [r.to_json() for r in store]


def test_save_replaces_atomically_and_leaves_no_temp_files(tmp_path):
    path = tmp_path / "d2.jsonl"
    path.write_text("corrupt half-written garbage\n")
    store = ConfigSampleStore([_sample(), _sample(gci=2)])
    store.save(path)
    assert len(ConfigSampleStore.load(path)) == 2
    assert [p.name for p in tmp_path.iterdir()] == ["d2.jsonl"]


def test_failed_save_preserves_existing_file(tmp_path):
    path = tmp_path / "d2.jsonl"
    ConfigSampleStore([_sample()]).save(path)
    before = path.read_bytes()

    class Exploding:
        def to_json(self):
            raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        ConfigSampleStore([Exploding()]).save(path)  # type: ignore[list-item]
    assert path.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["d2.jsonl"]


# -- per-parameter index ------------------------------------------------------

def _naive_store_views(store):
    """Recompute the per-parameter reads by scanning, index-free."""
    samples = list(store)
    parameters = sorted({s.parameter for s in samples})
    unique = {
        p: list({
            (s.carrier, s.gci, s.value_key): s.value_key
            for s in samples if s.parameter == p
        }.values())
        for p in parameters
    }
    per_cell = {}
    for p in parameters:
        counts = {}
        for s in samples:
            if s.parameter == p:
                counts[(s.carrier, s.gci)] = counts.get((s.carrier, s.gci), 0) + 1
        per_cell[p] = counts
    return parameters, unique, per_cell


def test_parameter_index_matches_naive_scan():
    store = ConfigSampleStore([
        _sample(gci=1, value=4.0),
        _sample(gci=1, value=4.0, day=9.0),
        _sample(gci=1, value=2.0, day=20.0),
        _sample(gci=2, value=4.0),
        _sample(gci=2, parameter="p_max", value=23),
        _sample(carrier="T", gci=1, parameter="p_max", value=21),
    ])
    parameters, unique, per_cell = _naive_store_views(store)
    assert store.parameters() == parameters
    for p in parameters:
        assert sorted(map(str, store.unique_values(p))) == sorted(map(str, unique[p]))
        assert store.samples_per_cell(p) == per_cell[p]
        assert len(store.for_parameter(p)) == sum(per_cell[p].values())


def test_parameter_index_invalidated_on_mutation():
    store = ConfigSampleStore([_sample(gci=1)])
    assert store.parameters() == ["q_hyst"]  # builds the index
    store.add(_sample(gci=2, parameter="p_max", value=23))
    assert store.parameters() == ["p_max", "q_hyst"]
    assert store.samples_per_cell("p_max") == {("A", 2): 1}
    store.extend([_sample(gci=3, parameter="p_max", value=20)])
    assert store.samples_per_cell("p_max") == {("A", 2): 1, ("A", 3): 1}
    store.ingest([[_sample(gci=4, parameter="p_max", value=18)]])
    assert store.samples_per_cell("p_max") == {
        ("A", 2): 1, ("A", 3): 1, ("A", 4): 1,
    }


def test_parameter_index_invalidated_when_mutation_raises():
    """A generator that dies mid-extend/ingest still mutates the list
    (``list.extend`` keeps consumed elements), so the lazy index must be
    invalidated even on the exception path."""

    def exploding_samples():
        yield _sample(gci=2, parameter="p_max", value=23)
        raise RuntimeError("source died")

    store = ConfigSampleStore([_sample(gci=1)])
    assert store.parameters() == ["q_hyst"]  # builds the index
    with pytest.raises(RuntimeError):
        store.extend(exploding_samples())
    assert len(store) == 2  # the consumed sample did land
    assert store.parameters() == ["p_max", "q_hyst"]
    assert store.samples_per_cell("p_max") == {("A", 2): 1}

    def exploding_batches():
        yield [_sample(gci=3, parameter="p_max", value=20)]
        raise RuntimeError("source died")

    assert store.parameters() == ["p_max", "q_hyst"]  # rebuild the index
    with pytest.raises(RuntimeError):
        store.ingest(exploding_batches())
    assert store.samples_per_cell("p_max") == {("A", 2): 1, ("A", 3): 1}


# -- iterator ingest ----------------------------------------------------------

def test_ingest_streams_batches_lazily():
    store = ConfigSampleStore()
    seen = []

    def batches():
        for gci in (1, 2):
            batch = [_sample(gci=gci)]
            seen.append(len(store))  # store grows between batches
            yield batch

    added = store.ingest(batches())
    assert added == 2
    assert len(store) == 2
    assert seen == [0, 1]


def test_handoff_ingest_counts():
    store = HandoffInstanceStore()
    assert store.ingest([[_instance()], [], [_instance(kind="idle")]]) == 2
    assert len(store.active()) == 1 and len(store.idle()) == 1
