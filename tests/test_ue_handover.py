"""Tests for network-side handover decisions."""

import numpy as np
import pytest

from repro.cellnet.rat import RAT
from repro.rrc.messages import MeasResult, MeasurementReport
from repro.ue.handover import (
    DECISION_DELAY_RANGE_MS,
    NetworkController,
    EXECUTION_INTERRUPTION_RANGE_MS,
)


@pytest.fixture
def controller(env, server):
    return NetworkController(env, server, np.random.default_rng(9))


def _meas_result(cell, rsrp):
    return MeasResult(
        carrier=cell.carrier, gci=cell.cell_id.gci, pci=cell.pci,
        channel=cell.channel, rat=cell.rat.value, rsrp_dbm=rsrp, rsrq_db=-11.0,
    )


@pytest.fixture
def serving_and_neighbor(scenario):
    cells = [c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.LTE]
    return cells[0], cells[1]


def test_a3_report_yields_command(controller, serving_and_neighbor):
    serving, neighbor = serving_and_neighbor
    report = MeasurementReport(
        event="A3", serving=_meas_result(serving, -105.0),
        neighbors=(_meas_result(neighbor, -98.0),),
    )
    command = controller.on_measurement_report(1000, serving, report)
    assert command is not None
    assert command.mobility.target_gci == neighbor.cell_id.gci
    assert DECISION_DELAY_RANGE_MS[0] <= command.execute_at_ms - 1000 <= DECISION_DELAY_RANGE_MS[1]
    assert EXECUTION_INTERRUPTION_RANGE_MS[0] <= command.interruption_ms <= EXECUTION_INTERRUPTION_RANGE_MS[1]


def test_report_without_neighbors_no_command(controller, serving_and_neighbor):
    serving, _ = serving_and_neighbor
    report = MeasurementReport(event="A2", serving=_meas_result(serving, -115.0))
    assert controller.on_measurement_report(0, serving, report) is None


def test_periodic_report_needs_margin(controller, serving_and_neighbor):
    serving, neighbor = serving_and_neighbor
    weak = MeasurementReport(
        event="P", serving=_meas_result(serving, -100.0),
        neighbors=(_meas_result(neighbor, -99.0),),
    )
    assert controller.on_measurement_report(0, serving, weak) is None
    strong = MeasurementReport(
        event="P", serving=_meas_result(serving, -100.0),
        neighbors=(_meas_result(neighbor, -92.0),),
    )
    assert controller.on_measurement_report(0, serving, strong) is not None


def test_serving_echo_is_not_a_candidate(controller, serving_and_neighbor):
    serving, _ = serving_and_neighbor
    report = MeasurementReport(
        event="A3", serving=_meas_result(serving, -105.0),
        neighbors=(_meas_result(serving, -104.0),),
    )
    assert controller.on_measurement_report(0, serving, report) is None


def test_best_candidate_selected(controller, scenario):
    cells = [c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.LTE]
    serving, weak, strong = cells[0], cells[1], cells[2]
    report = MeasurementReport(
        event="A3", serving=_meas_result(serving, -108.0),
        neighbors=(_meas_result(weak, -103.0), _meas_result(strong, -96.0)),
    )
    command = controller.on_measurement_report(0, serving, report)
    assert command.mobility.target_gci == strong.cell_id.gci


def test_decisive_event_recorded(controller, serving_and_neighbor):
    serving, neighbor = serving_and_neighbor
    report = MeasurementReport(
        event="A5", serving=_meas_result(serving, -112.0),
        neighbors=(_meas_result(neighbor, -100.0),),
    )
    command = controller.on_measurement_report(0, serving, report)
    assert command.decisive_event.value == "A5"
